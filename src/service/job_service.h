#ifndef IRES_SERVICE_JOB_SERVICE_H_
#define IRES_SERVICE_JOB_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/ires_server.h"
#include "threading/task_scheduler.h"
#include "telemetry/event_journal.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/trace_context.h"

namespace ires {

class JobJournal;

/// Lifecycle of one submitted workflow job:
///
///   QUEUED ──► PLANNING ──► RUNNING ──► SUCCEEDED
///     │            │            │
///     │(cancel)    │(cancel     └──────► FAILED
///     ▼            ▼  before execute)
///  CANCELLED ◄─────┘
///
/// Execution itself is not preemptible (the discrete-event enforcer runs a
/// plan to completion), so a cancel that arrives during RUNNING is
/// recorded but the job still reaches SUCCEEDED/FAILED.
enum class JobState {
  kQueued,
  kPlanning,
  kRunning,
  kSucceeded,
  kFailed,
  kCancelled,
};

const char* JobStateName(JobState state);
bool IsTerminal(JobState state);

/// Everything the serving layer records about one submission.
struct JobRecord {
  std::string id;
  std::string workflow;          // caller-supplied workflow name
  OptimizationPolicy policy;
  JobState state = JobState::kQueued;
  std::string error;             // terminal failure message, if any

  /// SLO workload class this job is accounted under ("dag" for workflow
  /// submissions, "sql" for the SQL route).
  std::string slo_class = "dag";

  /// Admission tenant and QoS class (0 = gold … 2 = bronze) the job was
  /// accounted under; "default"/1 for direct submissions.
  std::string tenant = "default";
  int qos_class = 1;
  /// Client-supplied dedupe key, empty when none was given.
  std::string idempotency_key;
  /// Control-plane placement: the replica index serving this record and
  /// the journal fencing token of this execution incarnation.
  int replica = 0;
  uint64_t incarnation = 1;
  /// Set when this record is a failover resubmission that resumed from
  /// journaled checkpoints; resumed_steps counts the step outputs it
  /// inherited instead of re-executing.
  bool resumed = false;
  int resumed_steps = 0;

  /// Flight-recorder snapshot attached when the job reaches FAILED: the
  /// last K journal events carrying this job's id, in sequence order — the
  /// postmortem survives even after the ring buffer wraps past them.
  std::vector<JournalEvent> event_snapshot;

  // Chosen-plan summary (available once PLANNING completes; no re-planning
  // needed thanks to IresServer::WorkflowRunResult).
  std::string plan_summary;
  int plan_steps = 0;
  double estimated_seconds = 0.0;
  double estimated_cost = 0.0;
  bool plan_cache_hit = false;

  // Execution outcome (valid once RUNNING finishes).
  RecoveryOutcome outcome;

  // What the job's chaos schedule injected (all zero without chaos).
  ChaosScheduler::Counts chaos_injected;

  // Wall-clock timestamps, seconds since the Unix epoch (0 = not yet).
  double submitted_at = 0.0;
  double started_at = 0.0;
  double finished_at = 0.0;

  // Wall-clock phase durations (seconds). Every terminal job carries the
  // durations of the phases it reached — including FAILED and CANCELLED
  // jobs, whose latency would otherwise vanish from the record: a job
  // cancelled while queued still reports its queue wait, a job that failed
  // planning still reports queue + planning time.
  double queue_seconds = 0.0;
  double plan_seconds = 0.0;
  double exec_wall_seconds = 0.0;

  /// Span trace for this job, created at submission and shared with the
  /// REST layer (GET /apiv1/jobs/{id}/trace renders it as Chrome
  /// trace-event JSON). Never null for jobs created through Submit.
  std::shared_ptr<TraceContext> trace;
};

/// The concurrent serving layer: accepts workflow submissions into a
/// bounded admission queue and drives the plan→execute→refine pipeline on
/// the server's shared TaskScheduler, holding at most `workers` jobs
/// in flight at once (the concurrency cap the private worker pool used to
/// provide — but idle capacity is now shared with every other subsystem).
/// Submissions beyond the queue bound are rejected with ResourceExhausted
/// (HTTP 429 through the REST mapping) — the admission-control primitive
/// that lets a long-lived multi-user IReS deployment shed load instead of
/// collapsing under it.
///
/// Telemetry: lifecycle counters (`ires_jobs_total{outcome=...}`), queue
/// depth / active gauges, and queue-wait / job-duration histograms all live
/// in the server's MetricsRegistry; stats() is a thin read over them.
class JobService {
 public:
  struct Options {
    /// Maximum jobs dispatched to the scheduler concurrently — the job
    /// service's share of the substrate, not a thread count.
    int workers = 4;
    /// Jobs admitted but not yet picked up by a worker. Submissions are
    /// rejected once this many are waiting.
    size_t queue_capacity = 64;
    /// Execution substrate; null uses the server's shared scheduler.
    TaskScheduler* scheduler = nullptr;
  };

  struct Stats {
    uint64_t submitted = 0;   // accepted submissions
    uint64_t rejected = 0;    // bounced on a full queue
    uint64_t succeeded = 0;
    uint64_t failed = 0;
    uint64_t cancelled = 0;
    size_t queue_depth = 0;   // currently QUEUED
    size_t running = 0;       // currently PLANNING or RUNNING
    int workers = 0;
  };

  /// Control-plane metadata riding one submission. Default-constructed it
  /// reproduces the legacy direct-submission behavior exactly (tenant
  /// "default", silver class, no journal, locally minted id).
  struct SubmitMeta {
    std::string tenant = "default";
    /// QoS class: 0 = gold, 1 = silver, 2 = bronze. Lower dispatches
    /// first, and a full queue preempts strictly-lower-class QUEUED jobs
    /// to admit a higher-class newcomer.
    int qos_class = 1;
    /// Weighted-fair share within the class: a tenant with weight 2 gets
    /// twice the dispatch rate of a weight-1 tenant under contention.
    double weight = 1.0;
    std::string idempotency_key;
    /// Control-plane-minted global job id; empty mints a local one.
    std::string id_override;
    /// Journal fencing token of this execution incarnation.
    uint64_t incarnation = 1;
    /// Replica index this service serves as (control-plane placement).
    int replica = 0;
    /// Write-ahead job journal receiving lifecycle records; null disables
    /// journaling (the legacy path).
    JobJournal* journal = nullptr;
    /// Failover resubmission: the job was validated and admitted once
    /// already, so the lint gate and the queue-capacity bound are skipped
    /// and execution resumes from exec.resume_materialized.
    bool recovered = false;
  };

  /// Probe invoked at job phase boundaries with no service lock held:
  /// 'p' just before planning, 'r' just before execution, 's' after each
  /// completed step (completed_steps carries the running count). The
  /// control plane's chaos layer uses it to kill replicas mid-plan and
  /// mid-run at deterministic points.
  using PhaseProbe =
      std::function<void(const std::string& job_id, int completed_steps,
                         char phase)>;

  explicit JobService(IresServer* server);
  JobService(IresServer* server, Options options);

  /// Drains in-flight jobs (queued jobs are cancelled) and joins workers.
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// Admits one workflow for asynchronous execution. Returns the job id,
  /// or ResourceExhausted when the admission queue is full. `exec` carries
  /// the job's fault-tolerance regime — recovery strategy, replan budget,
  /// retry policy and chaos schedule — so every submission can run under
  /// its own failure discipline.
  /// `slo_class` tags the job's SLO workload class ("dag" or "sql").
  Result<std::string> Submit(
      const WorkflowGraph& graph, const std::string& workflow_name,
      OptimizationPolicy policy = OptimizationPolicy::MinimizeTime(),
      const IresServer::ExecutionOptions& exec =
          IresServer::ExecutionOptions(),
      const std::string& slo_class = "dag") EXCLUDES(mu_);

  /// Control-plane submission: same admission pipeline plus tenant
  /// accounting, weighted-fair queuing, QoS preemption and write-ahead
  /// journaling per `meta`.
  Result<std::string> Submit(const WorkflowGraph& graph,
                             const std::string& workflow_name,
                             OptimizationPolicy policy,
                             const IresServer::ExecutionOptions& exec,
                             const std::string& slo_class,
                             const SubmitMeta& meta) EXCLUDES(mu_);

  /// Installs the phase probe. Must be called before the first Submit —
  /// the probe pointer is read without synchronization from job threads.
  void set_phase_probe(PhaseProbe probe) { phase_probe_ = std::move(probe); }

  /// Simulated replica crash: admission starts refusing with Unavailable
  /// and every in-flight job abandons at its next phase boundary (its
  /// journal appends are fenced once the control plane reassigns it).
  /// The scheduler and existing records survive — this kills the replica
  /// *role*, not the process.
  void SimulateCrash() { crashed_.store(true, std::memory_order_release); }
  /// Replica restart: admission resumes. Local records from before the
  /// crash remain readable.
  void ClearCrash() { crashed_.store(false, std::memory_order_release); }
  bool crashed() const {
    return crashed_.load(std::memory_order_acquire);
  }

  /// Estimated seconds until a newly queued job would start: queue depth
  /// times the EWMA job duration over the dispatch width. The Retry-After
  /// hint source.
  double BacklogSeconds() const EXCLUDES(mu_);

  /// Snapshot of one job (NotFound for unknown ids).
  Result<JobRecord> Get(const std::string& id) const EXCLUDES(mu_);

  /// Snapshots of all jobs, oldest submission first.
  std::vector<JobRecord> List() const EXCLUDES(mu_);

  /// Requests cancellation. A QUEUED job transitions to CANCELLED
  /// immediately; a PLANNING job is cancelled before execution starts; a
  /// RUNNING job records the request but completes (see the state machine
  /// above). Terminal jobs return FailedPrecondition.
  Status Cancel(const std::string& id) EXCLUDES(mu_);

  Stats stats() const EXCLUDES(mu_);

  const Options& options() const { return options_; }

  /// Blocks until no job is QUEUED/PLANNING/RUNNING or `timeout_seconds`
  /// elapses; returns true when idle was reached. Test/benchmark helper.
  bool WaitForIdle(double timeout_seconds) const EXCLUDES(mu_);

  /// Stops admitting work, cancels queued jobs and joins the workers.
  /// Idempotent; the destructor calls it.
  void Shutdown() EXCLUDES(mu_);

 private:
  /// Per-job mutable state. The analysis cannot express "guarded by the
  /// owning service's mu_" on a nested struct, so the contract is
  /// documented instead: after Submit publishes a Job, `record`,
  /// `cancel_requested` and `queue_span` are only touched under mu_
  /// (`graph` and `exec` are immutable after Submit).
  struct Job {
    JobRecord record;
    WorkflowGraph graph;
    IresServer::ExecutionOptions exec;  // immutable after Submit
    bool cancel_requested = false;
    uint64_t queue_span = 0;  // open "job.queue_wait" span id
    // Weighted-fair queuing state (immutable after Submit): dispatch picks
    // the queued job with the lowest (qos_class, vfinish).
    int qos_class = 1;
    double weight = 1.0;
    double vfinish = 0.0;
    // Write-ahead journal handle + fencing token (immutable after Submit;
    // null journal disables journaling).
    JobJournal* journal = nullptr;
    uint64_t incarnation = 1;
    // Completed-step counter fed by the enforcer's step observer (its own
    // thread), read by the phase probe.
    std::atomic<int> completed_steps{0};
  };

  /// Scheduler-task wrapper: runs the job, then releases its dispatch slot
  /// and pulls the next queued job in.
  void RunJob(const std::shared_ptr<Job>& job) EXCLUDES(mu_);
  void ExecuteJob(const std::shared_ptr<Job>& job) EXCLUDES(mu_);
  /// Feeds queued jobs to the scheduler while dispatch slots are free.
  /// Jobs the scheduler refuses (shut down) are cancelled on the spot, so
  /// no record is ever stranded in QUEUED. Enqueueing under mu_ is safe:
  /// TaskScheduler::Submit only takes scheduler locks (all ranked above
  /// kJobService) and never blocks in TaskGroup::Wait.
  void DispatchLocked() REQUIRES(mu_);
  /// Closes out a job reaching a terminal state while holding mu_:
  /// timestamps, the terminal counter, the duration histogram and the idle
  /// broadcast. `job.state` must already be terminal.
  void FinalizeLocked(Job* job) REQUIRES(mu_);
  /// Marks an in-flight job CANCELLED because this replica crashed; the
  /// control plane re-runs it elsewhere under a fresh incarnation, so the
  /// local record is just a tombstone.
  void AbandonLocked(Job* job) REQUIRES(mu_);

  IresServer* server_;
  const Options options_;

  /// kJobService sits below every planner/registry/telemetry rank: job
  /// bookkeeping sections journal events, end trace spans and move gauges
  /// while holding mu_.
  mutable Mutex mu_{LockRank::kJobService, "jobs.service"};
  /// Waits on mu_ directly (condition_variable_any), so the rank registry
  /// sees every release/reacquire across the wait.
  mutable std::condition_variable_any idle_;
  std::map<std::string, std::shared_ptr<Job>> jobs_ GUARDED_BY(mu_);
  std::vector<std::string> submission_order_ GUARDED_BY(mu_);
  uint64_t next_job_number_ GUARDED_BY(mu_) = 1;
  size_t queued_ GUARDED_BY(mu_) = 0;
  size_t active_ GUARDED_BY(mu_) = 0;  // PLANNING or RUNNING
  /// Jobs handed to the scheduler whose RunJob has not returned yet;
  /// bounded by options_.workers.
  size_t dispatched_ GUARDED_BY(mu_) = 0;
  std::deque<std::shared_ptr<Job>> run_queue_ GUARDED_BY(mu_);
  bool shutting_down_ GUARDED_BY(mu_) = false;

  /// Replica-crash flag read at every phase boundary by job threads.
  std::atomic<bool> crashed_{false};
  /// Installed before the first Submit; read without synchronization.
  PhaseProbe phase_probe_;

  /// Weighted-fair queuing state: the service-wide virtual clock and each
  /// tenant's virtual finish time. A job's vfinish is
  /// max(vclock_, tenant_vtime_[tenant]) + 1/weight, and DispatchLocked
  /// picks the queued job with the lowest (qos_class, vfinish).
  double vclock_ GUARDED_BY(mu_) = 0.0;
  std::map<std::string, double> tenant_vtime_ GUARDED_BY(mu_);
  /// EWMA of terminal job durations (seconds); feeds BacklogSeconds.
  double ewma_seconds_ GUARDED_BY(mu_) = 0.0;

  // Registry-backed instruments (stats() reads the counters back, so the
  // legacy accessors and /apiv1/metrics can never disagree).
  Counter* submitted_total_;
  Counter* rejected_total_;
  Counter* succeeded_total_;
  Counter* failed_total_;
  Counter* cancelled_total_;
  Counter* preempted_total_;
  Gauge* queued_gauge_;
  Gauge* active_gauge_;
  Histogram* queue_wait_seconds_;
  Histogram* job_duration_seconds_;

  /// The shared substrate (not owned); Shutdown drains our dispatched jobs
  /// but never stops the scheduler itself.
  TaskScheduler* sched_;
};

}  // namespace ires

#endif  // IRES_SERVICE_JOB_SERVICE_H_
