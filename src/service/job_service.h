#ifndef IRES_SERVICE_JOB_SERVICE_H_
#define IRES_SERVICE_JOB_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/ires_server.h"
#include "service/thread_pool.h"

namespace ires {

/// Lifecycle of one submitted workflow job:
///
///   QUEUED ──► PLANNING ──► RUNNING ──► SUCCEEDED
///     │            │            │
///     │(cancel)    │(cancel     └──────► FAILED
///     ▼            ▼  before execute)
///  CANCELLED ◄─────┘
///
/// Execution itself is not preemptible (the discrete-event enforcer runs a
/// plan to completion), so a cancel that arrives during RUNNING is
/// recorded but the job still reaches SUCCEEDED/FAILED.
enum class JobState {
  kQueued,
  kPlanning,
  kRunning,
  kSucceeded,
  kFailed,
  kCancelled,
};

const char* JobStateName(JobState state);
bool IsTerminal(JobState state);

/// Everything the serving layer records about one submission.
struct JobRecord {
  std::string id;
  std::string workflow;          // caller-supplied workflow name
  OptimizationPolicy policy;
  JobState state = JobState::kQueued;
  std::string error;             // terminal failure message, if any

  // Chosen-plan summary (available once PLANNING completes; no re-planning
  // needed thanks to IresServer::WorkflowRunResult).
  std::string plan_summary;
  int plan_steps = 0;
  double estimated_seconds = 0.0;
  double estimated_cost = 0.0;
  bool plan_cache_hit = false;

  // Execution outcome (valid once RUNNING finishes).
  RecoveryOutcome outcome;

  // Wall-clock timestamps, seconds since the Unix epoch (0 = not yet).
  double submitted_at = 0.0;
  double started_at = 0.0;
  double finished_at = 0.0;
};

/// The concurrent serving layer: accepts workflow submissions into a
/// bounded admission queue and drives the plan→execute→refine pipeline on a
/// fixed-size worker pool. Submissions beyond the queue bound are rejected
/// with ResourceExhausted (HTTP 429 through the REST mapping) — the
/// admission-control primitive that lets a long-lived multi-user IReS
/// deployment shed load instead of collapsing under it.
class JobService {
 public:
  struct Options {
    int workers = 4;
    /// Jobs admitted but not yet picked up by a worker. Submissions are
    /// rejected once this many are waiting.
    size_t queue_capacity = 64;
  };

  struct Stats {
    uint64_t submitted = 0;   // accepted submissions
    uint64_t rejected = 0;    // bounced on a full queue
    uint64_t succeeded = 0;
    uint64_t failed = 0;
    uint64_t cancelled = 0;
    size_t queue_depth = 0;   // currently QUEUED
    size_t running = 0;       // currently PLANNING or RUNNING
    int workers = 0;
  };

  explicit JobService(IresServer* server);
  JobService(IresServer* server, Options options);

  /// Drains in-flight jobs (queued jobs are cancelled) and joins workers.
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// Admits one workflow for asynchronous execution. Returns the job id,
  /// or ResourceExhausted when the admission queue is full.
  Result<std::string> Submit(
      const WorkflowGraph& graph, const std::string& workflow_name,
      OptimizationPolicy policy = OptimizationPolicy::MinimizeTime());

  /// Snapshot of one job (NotFound for unknown ids).
  Result<JobRecord> Get(const std::string& id) const;

  /// Snapshots of all jobs, oldest submission first.
  std::vector<JobRecord> List() const;

  /// Requests cancellation. A QUEUED job transitions to CANCELLED
  /// immediately; a PLANNING job is cancelled before execution starts; a
  /// RUNNING job records the request but completes (see the state machine
  /// above). Terminal jobs return FailedPrecondition.
  Status Cancel(const std::string& id);

  Stats stats() const;

  /// Blocks until no job is QUEUED/PLANNING/RUNNING or `timeout_seconds`
  /// elapses; returns true when idle was reached. Test/benchmark helper.
  bool WaitForIdle(double timeout_seconds) const;

  /// Stops admitting work, cancels queued jobs and joins the workers.
  /// Idempotent; the destructor calls it.
  void Shutdown();

 private:
  struct Job {
    JobRecord record;
    WorkflowGraph graph;
    bool cancel_requested = false;
  };

  void RunJob(const std::shared_ptr<Job>& job);

  IresServer* server_;
  const Options options_;

  mutable std::mutex mu_;
  mutable std::condition_variable idle_;
  std::map<std::string, std::shared_ptr<Job>> jobs_;  // id -> job
  std::vector<std::string> submission_order_;
  uint64_t next_job_number_ = 1;
  size_t queued_ = 0;
  size_t active_ = 0;  // PLANNING or RUNNING
  bool shutting_down_ = false;

  // Terminal-state counters (guarded by mu_).
  uint64_t submitted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t succeeded_ = 0;
  uint64_t failed_ = 0;
  uint64_t cancelled_ = 0;

  // Last: destroyed first, so workers join before state they use dies.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace ires

#endif  // IRES_SERVICE_JOB_SERVICE_H_
