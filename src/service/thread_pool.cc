#include "service/thread_pool.h"

#include <algorithm>

namespace ires {

ThreadPool::ThreadPool(int workers, MetricsRegistry* metrics) {
  if (metrics != nullptr) {
    pending_gauge_ = metrics->GetGauge(
        "ires_pool_pending_tasks",
        "Tasks enqueued on the worker pool awaiting pickup.");
    wait_histogram_ = metrics->GetHistogram(
        "ires_pool_task_wait_seconds",
        "Latency from task enqueue to worker pickup.");
  }
  const int n = std::max(1, workers);
  threads_.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) return false;
    tasks_.push_back({std::move(task), std::chrono::steady_clock::now()});
    if (pending_gauge_ != nullptr) {
      pending_gauge_->Set(static_cast<double>(tasks_.size()));
    }
  }
  wake_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      // A second Shutdown (e.g. explicit call followed by the destructor)
      // only needs to join whatever is still running.
    }
    shutting_down_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
      if (pending_gauge_ != nullptr) {
        pending_gauge_->Set(static_cast<double>(tasks_.size()));
      }
    }
    if (wait_histogram_ != nullptr) {
      wait_histogram_->Observe(std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() -
                                   task.enqueued_at)
                                   .count());
    }
    task.fn();
  }
}

}  // namespace ires
