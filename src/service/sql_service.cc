#include "service/sql_service.h"

#include <chrono>
#include <utility>

#include "sql/sql_parser.h"

namespace ires {

namespace {

/// Maps a front-end failure to its stable SQxxx code. Status codes line up
/// with the optimizer's contract: NotFound = unknown table/column/engine,
/// InvalidArgument = parse error or unsupported query (too many tables,
/// disconnected join graph), ResourceExhausted/FailedPrecondition = no
/// engine can hold the working set.
const char* SqlDiagCode(StatusCode code, bool parsed) {
  if (!parsed) return diag::kSqlParseError;
  switch (code) {
    case StatusCode::kNotFound: return diag::kSqlUnknownName;
    case StatusCode::kInvalidArgument: return diag::kSqlUnsupportedQuery;
    default: return diag::kSqlNoFeasiblePlan;
  }
}

const char* SqlOutcomeLabel(StatusCode code, bool parsed) {
  if (!parsed) return "parse_error";
  switch (code) {
    case StatusCode::kNotFound: return "unknown_name";
    case StatusCode::kInvalidArgument: return "unsupported";
    default: return "infeasible";
  }
}

}  // namespace

SqlService::SqlService(IresServer* server, Options options)
    : server_(server),
      options_(options),
      catalog_(sql::MakeTpchCatalog(options.tpch_scale_gb, "PostgreSQL",
                                    "MemSQL", "SparkSQL")),
      engines_(sql::MakeStandardSqlEngines()) {
  if (options_.optimizer_threads > 0 &&
      options_.optimizer.scheduler == nullptr) {
    options_.optimizer.scheduler = options_.scheduler != nullptr
                                       ? options_.scheduler
                                       : &server_->scheduler();
  }
  optimizer_ = std::make_unique<sql::MusqleOptimizer>(&catalog_, &engines_,
                                                      options_.optimizer);
  MetricsRegistry& metrics = server_->metrics();
  shape_hits_ = metrics.GetCounter(
      "ires_sql_shape_cache_hits_total",
      "SQL submissions whose parameterized shape was already prepared");
  shape_misses_ = metrics.GetCounter(
      "ires_sql_shape_cache_misses_total",
      "SQL submissions that required a fresh optimize+lower pass");
  optimize_seconds_ = metrics.GetHistogram(
      "ires_sql_optimize_seconds",
      "Wall-clock latency of one MuSQLE optimize+lower pass");
  // Pre-register the shared SqlScan/SqlJoin/SqlMove implementations once at
  // construction: the library version settles before the first query, so
  // consecutive same-shape submissions hit the plan cache warm.
  (void)sql::EnsureSqlOperators(&server_->library());
}

Result<SqlService::PreparedQuery> SqlService::Prepare(
    const std::string& sql_text, std::vector<Diagnostic>* diagnostics) {
  MetricsRegistry& metrics = server_->metrics();
  auto count_outcome = [&](const char* outcome) {
    metrics
        .GetCounter("ires_sql_queries_total",
                    "SQL submissions by outcome", {{"outcome", outcome}})
        ->Increment();
  };
  auto reject = [&](const Status& status, bool parsed) -> Status {
    count_outcome(SqlOutcomeLabel(status.code(), parsed));
    if (diagnostics != nullptr) {
      Diagnostic diag;
      diag.code = SqlDiagCode(status.code(), parsed);
      diag.severity = DiagSeverity::kError;
      diag.message = status.message();
      diag.fix_hint = parsed
                          ? "check table/column names against the TPC-H "
                            "catalog and keep the join graph connected"
                          : "the SQL subset is SELECT cols FROM tables "
                            "[WHERE col = col AND col <op> literal ...]";
      diagnostics->push_back(std::move(diag));
    }
    return status;
  };

  auto parsed = sql::SqlParser::Parse(sql_text);
  if (!parsed.ok()) return reject(parsed.status(), /*parsed=*/false);
  const sql::Query& query = parsed.value();
  const std::string shape = sql::QueryShape(query);

  {
    MutexLock lock(mu_);
    auto it = shape_cache_.find(shape);
    if (it != shape_cache_.end()) {
      shape_hits_->Increment();
      count_outcome("ok");
      PreparedQuery out = it->second;
      out.shape_cache_hit = true;
      return out;
    }
  }
  shape_misses_->Increment();

  const auto start = std::chrono::steady_clock::now();
  auto plan = optimizer_->Optimize(query);
  if (!plan.ok()) return reject(plan.status(), /*parsed=*/true);

  auto lowered = sql::LowerSqlPlan(query, plan.value(), catalog_,
                                   &server_->library());
  if (!lowered.ok()) {
    count_outcome("error");
    return lowered.status();
  }
  optimize_seconds_->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());

  const sql::LoweredWorkflow& low = lowered.value();
  auto count_kind = [&](const char* kind, int n) {
    if (n > 0) {
      metrics
          .GetCounter("ires_sql_lowered_nodes_total",
                      "Workflow operators produced by SQL plan lowering",
                      {{"kind", kind}})
          ->Increment(static_cast<uint64_t>(n));
    }
  };
  count_kind("scan", low.scan_ops);
  count_kind("join", low.join_ops);
  count_kind("move", low.move_ops);

  PreparedQuery out;
  out.shape_id = low.shape_id;
  out.shape = low.shape;
  out.result_engine = low.result_engine;
  out.estimated_seconds = plan.value().total_seconds;
  out.scan_ops = low.scan_ops;
  out.join_ops = low.join_ops;
  out.move_ops = low.move_ops;
  out.shape_cache_hit = false;
  out.graph = low.graph;

  {
    MutexLock lock(mu_);
    shape_cache_.emplace(shape, out);
  }
  count_outcome("ok");
  return out;
}

size_t SqlService::shape_cache_size() const {
  MutexLock lock(mu_);
  return shape_cache_.size();
}

}  // namespace ires
