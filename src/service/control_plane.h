#ifndef IRES_SERVICE_CONTROL_PLANE_H_
#define IRES_SERVICE_CONTROL_PLANE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chaos/chaos_scheduler.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "service/job_journal.h"
#include "service/job_service.h"

namespace ires {

/// The sharded control plane: N in-process JobService replicas behind
/// consistent-hash routing of workflow fingerprints, a shared write-ahead
/// job journal, and per-tenant weighted-fair admission.
///
/// Resilience contract (the reason this layer exists):
///
///   - every accepted job is journaled before it reaches a replica queue,
///     so killing a replica loses in-flight work but never accepted work;
///   - on a kill (or a heartbeat timeout) the plane fences the dead
///     incarnation via JobJournal::Reassign and resubmits each open job to
///     a live replica, seeding DpPlanner's materialized-intermediates
///     pruning with the job's journaled step outputs — resumed jobs skip
///     already-completed steps instead of restarting;
///   - the journal's terminal record is exactly-once per job even when the
///     "dead" replica was merely partitioned and finished behind the
///     plane's back (the stale incarnation's append is fenced);
///   - a client-supplied idempotency key dedupes resubmission across
///     replicas: the second Submit returns the first job id.
///
/// Execution itself is at-least-once — a mid-run kill cannot un-run a
/// step on the dead replica — but the journal accounting is exactly-once,
/// which is the invariant the chaos soak reconciles.
///
/// The plane also owns graceful degradation: per-tenant QoS classes and
/// quotas, saturation-based shedding of the lowest classes first, and
/// Retry-After hints derived from replica backlog.
class ControlPlane {
 public:
  /// Per-tenant admission policy. Unregistered tenants get the defaults.
  struct TenantConfig {
    /// 0 = gold, 1 = silver, 2 = bronze. Gold dispatches first and is
    /// shed last; bronze is shed first under saturation.
    int qos_class = 1;
    /// Weighted-fair share within the class (see JobService::SubmitMeta).
    double weight = 1.0;
    /// Open (non-terminal) jobs this tenant may hold across the plane;
    /// 0 = unlimited. Enforced against the journal's open count.
    size_t max_open_jobs = 0;
  };

  struct Options {
    /// Replica shards. 1 reproduces the single-service behavior (plus
    /// journaling); kills then have no failover target.
    int replicas = 1;
    /// Options applied to every owned replica.
    JobService::Options replica_options;
    /// Virtual nodes per replica on the hash ring: more gives smoother
    /// balance at slightly larger routing tables.
    int virtual_nodes = 16;
    /// Graceful degradation: shed bronze once aggregate queue saturation
    /// (queued / total capacity) reaches this, silver at the higher bar.
    /// <= 0 disables shedding for that class (the default).
    double shed_bronze_at = 0.0;
    double shed_silver_at = 0.0;
    /// Heartbeat state machine: seconds without a heartbeat before a
    /// replica turns SUSPECT, then DOWN (DOWN triggers failover).
    double suspect_after_seconds = 2.0;
    double down_after_seconds = 5.0;
    /// Control-plane fault injection (kills at phase boundaries, torn
    /// journal appends, heartbeat partitions). Disabled by default.
    ControlPlaneChaosConfig chaos;
  };

  /// Owned mode: constructs `options.replicas` JobService shards.
  explicit ControlPlane(IresServer* server);
  ControlPlane(IresServer* server, Options options);
  /// External mode: wraps one caller-owned JobService as the single
  /// replica (the legacy RestApi(server, jobs) arrangement). The wrapped
  /// service keeps working for direct submissions; plane submissions add
  /// journaling and tenant admission on top.
  ControlPlane(IresServer* server, JobService* external);
  ControlPlane(IresServer* server, JobService* external, Options options);

  ~ControlPlane();

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  /// Everything one plane submission carries beyond the graph.
  struct SubmitRequest {
    std::string workflow_name;
    OptimizationPolicy policy = OptimizationPolicy::MinimizeTime();
    IresServer::ExecutionOptions exec;
    std::string slo_class = "dag";
    std::string tenant = "default";
    /// Optional client dedupe key: a resubmission carrying a known key
    /// returns the original job id instead of a new job.
    std::string idempotency_key;
  };

  /// Admission pipeline: idempotency dedupe -> tenant quota -> saturation
  /// shedding -> consistent-hash routing to a live replica -> journal
  /// Open + replica Submit. Errors map to the REST layer as 429
  /// (ResourceExhausted: quota / full queue) and 503 (Unavailable:
  /// shedding / no live replica).
  Result<std::string> Submit(const WorkflowGraph& graph,
                             const SubmitRequest& request) EXCLUDES(mu_);

  /// Reads route via the plane's assignment table and fall back to
  /// scanning every replica (covers external-mode direct submissions).
  Result<JobRecord> Get(const std::string& id) const EXCLUDES(mu_);
  /// Union of all replicas' records, deduped by job id keeping the
  /// highest incarnation (a failed-over job leaves a CANCELLED tombstone
  /// on the dead replica), sorted by id (= submission order for minted
  /// ids).
  std::vector<JobRecord> List() const EXCLUDES(mu_);
  Status Cancel(const std::string& id) EXCLUDES(mu_);

  void SetTenant(const std::string& tenant, TenantConfig config)
      EXCLUDES(mu_);

  enum class ReplicaState { kUp, kSuspect, kDown };
  static const char* ReplicaStateName(ReplicaState state);

  struct ReplicaHealth {
    int id = 0;
    ReplicaState state = ReplicaState::kUp;
    bool partitioned = false;
    size_t queue_depth = 0;
    size_t running = 0;
    double backlog_seconds = 0.0;
    uint64_t journal_lag = 0;
  };
  struct Health {
    std::vector<ReplicaHealth> replicas;
    /// True when any replica is not UP — the healthz "degraded" signal.
    bool degraded = false;
    size_t queue_depth = 0;     // summed over replicas
    size_t queue_capacity = 0;  // summed over replicas
    size_t running = 0;
    int workers = 0;  // summed dispatch width
  };
  Health health() const EXCLUDES(mu_);

  /// Plane-wide stats. Lifecycle counters are shared registry instruments
  /// (every replica resolves the same series), so they are read once —
  /// never summed per replica; queue depth / running / workers are summed.
  JobService::Stats AggregateStats() const EXCLUDES(mu_);

  /// Retry-After hint: seconds until the least-backlogged live replica
  /// frees capacity, clamped to >= 1. 0 only when nothing is queued.
  double RetryAfterSeconds() const EXCLUDES(mu_);

  /// Kills a replica: marks it DOWN, crashes the service role, fences and
  /// resubmits its open jobs to live replicas. No-op on an already-down
  /// replica. With no live replica left the open jobs stay journaled and
  /// recover on the next RestartReplica.
  void KillReplica(int replica) EXCLUDES(mu_);
  /// Restarts a killed replica: clears the crash flag, heals partitions,
  /// marks it UP and re-adopts any still-open jobs stranded on it.
  void RestartReplica(int replica) EXCLUDES(mu_);
  /// Stops the replica's heartbeats without stopping its work — the
  /// asymmetric partition. Tick() eventually declares it DOWN and fails
  /// its jobs over; journal fencing keeps the partitioned incarnation's
  /// late appends out.
  void PartitionReplica(int replica) EXCLUDES(mu_);
  void HealReplica(int replica) EXCLUDES(mu_);

  /// Heartbeat evaluation at simulated time `now_seconds` (monotonic,
  /// caller-supplied so tests control the clock): live unpartitioned
  /// replicas heartbeat, then ages are classified UP/SUSPECT/DOWN. A
  /// DOWN transition triggers failover. Chaos may partition one replica
  /// per tick.
  void Tick(double now_seconds) EXCLUDES(mu_);

  JobJournal& journal() { return journal_; }
  const JobJournal& journal() const { return journal_; }
  int replica_count() const { return static_cast<int>(services_.size()); }
  /// The replica a fingerprint routes to while all replicas are up
  /// (test helper; live routing skips down replicas).
  int RouteOf(uint64_t fingerprint) const EXCLUDES(mu_);
  JobService* replica(int index) { return services_[index]; }
  uint64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }
  ControlPlaneChaos* chaos() { return chaos_.get(); }

  bool WaitForIdle(double timeout_seconds) const;

 private:
  struct Replica {
    JobService* service = nullptr;  // == owned_[i].get() in owned mode
    ReplicaState state = ReplicaState::kUp;
    bool partitioned = false;
    /// Simulated-clock heartbeat bookkeeping; <0 means "no tick seen yet"
    /// so the first Tick bootstraps instead of declaring everyone dead.
    double last_heartbeat = -1.0;
  };

  /// What failover needs to resubmit a job from scratch: the full
  /// submission, kept until the job's journal record turns terminal.
  struct JobSpec {
    WorkflowGraph graph;
    std::string workflow_name;
    OptimizationPolicy policy;
    IresServer::ExecutionOptions exec;
    std::string slo_class;
    int qos_class = 1;
    double weight = 1.0;
  };

  void InitCommon();
  void BuildRingLocked() REQUIRES(mu_);
  /// First live replica at or clockwise of `hash`; -1 when none is live.
  int RouteLiveLocked(uint64_t hash) const REQUIRES(mu_);
  int LiveCountLocked() const REQUIRES(mu_);
  void MarkDownAndFailoverLocked(int replica) REQUIRES(mu_);
  /// Fences `open`'s incarnation and resubmits it to `target` with its
  /// journaled step outputs seeding the resume. No-op (false) when the
  /// job raced to terminal or has no retained spec.
  bool ResubmitLocked(const JobJournal::OpenJob& open, int target)
      REQUIRES(mu_);
  /// Phase probe from replica `replica`'s job threads (no locks held).
  void OnPhase(int replica, const std::string& job_id, int completed_steps,
               char phase) EXCLUDES(mu_);
  void EmitReplicaState(int replica, const char* state) const;

  IresServer* server_;
  const Options options_;
  /// True in the wrap-a-caller-owned-service mode: the replica mints job
  /// ids itself (its counter stays collision-free against direct
  /// submissions); owned mode mints globally unique ids at the plane.
  const bool external_mode_;
  JobJournal journal_;
  std::unique_ptr<ControlPlaneChaos> chaos_;  // null when disabled

  std::vector<std::unique_ptr<JobService>> owned_;
  std::vector<JobService*> services_;

  mutable Mutex mu_{LockRank::kControlPlane, "control.plane"};
  std::vector<Replica> replicas_ GUARDED_BY(mu_);
  /// Sorted (hash, replica) ring of virtual nodes.
  std::vector<std::pair<uint64_t, int>> ring_ GUARDED_BY(mu_);
  std::map<std::string, TenantConfig> tenants_ GUARDED_BY(mu_);
  std::map<std::string, JobSpec> specs_ GUARDED_BY(mu_);
  std::map<std::string, int> assignment_ GUARDED_BY(mu_);
  std::map<std::string, std::string> idempotency_ GUARDED_BY(mu_);
  uint64_t next_job_number_ GUARDED_BY(mu_) = 1;
  /// Round-robins chaos partitions over replicas.
  int partition_cursor_ GUARDED_BY(mu_) = 0;

  std::atomic<uint64_t> failovers_{0};

  Counter* failovers_total_;
  Counter* rejected_total_;
  Gauge* replicas_up_gauge_;
};

}  // namespace ires

#endif  // IRES_SERVICE_CONTROL_PLANE_H_
