#include "service/control_plane.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

namespace ires {

namespace {

/// splitmix64 finalizer: spreads sequential virtual-node indices and raw
/// workflow fingerprints evenly over the ring's key space.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// FNV-1a over a job id — the rerouting key during failover (the original
/// fingerprint's home replica is the one that just died).
uint64_t HashString(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

constexpr char kJobsHelp[] = "Terminal job outcomes plus admission events.";

}  // namespace

const char* ControlPlane::ReplicaStateName(ReplicaState state) {
  switch (state) {
    case ReplicaState::kUp: return "up";
    case ReplicaState::kSuspect: return "suspect";
    case ReplicaState::kDown: return "down";
  }
  return "?";
}

ControlPlane::ControlPlane(IresServer* server)
    : ControlPlane(server, Options()) {}

ControlPlane::ControlPlane(IresServer* server, JobService* external)
    : ControlPlane(server, external, Options()) {}

ControlPlane::ControlPlane(IresServer* server, Options options)
    : server_(server),
      options_(options),
      external_mode_(false),
      journal_(&server->journal()) {
  const int count = std::max(1, options_.replicas);
  for (int i = 0; i < count; ++i) {
    owned_.push_back(
        std::make_unique<JobService>(server, options_.replica_options));
    services_.push_back(owned_.back().get());
  }
  InitCommon();
}

ControlPlane::ControlPlane(IresServer* server, JobService* external,
                           Options options)
    : server_(server),
      options_(options),
      external_mode_(true),
      journal_(&server->journal()) {
  services_.push_back(external);
  InitCommon();
}

ControlPlane::~ControlPlane() {
  // Join every owned replica's job threads before any member (the probe
  // target, the journal, mu_) goes away. External services are the
  // caller's to drain.
  for (std::unique_ptr<JobService>& service : owned_) service->Shutdown();
}

void ControlPlane::InitCommon() {
  if (options_.chaos.enabled()) {
    chaos_ = std::make_unique<ControlPlaneChaos>(options_.chaos);
  }
  MetricsRegistry& metrics = server_->metrics();
  failovers_total_ = metrics.GetCounter(
      "ires_control_plane_failovers_total",
      "Open jobs fenced and resubmitted to a live replica after their "
      "replica went down.");
  rejected_total_ =
      metrics.GetCounter("ires_jobs_total", kJobsHelp, {{"event", "rejected"}});
  replicas_up_gauge_ = metrics.GetGauge("ires_control_plane_replicas_up",
                                        "Replicas currently heartbeating.");
  MutexLock lock(mu_);
  replicas_.resize(services_.size());
  for (size_t i = 0; i < services_.size(); ++i) {
    replicas_[i].service = services_[i];
  }
  BuildRingLocked();
  replicas_up_gauge_->Set(static_cast<double>(services_.size()));
  // Chaos kills fire from the replicas' own job threads at phase
  // boundaries — probe-synchronous, so a "mid-run" kill lands exactly
  // after a step checkpoint, never at a torn arbitrary instant. Owned
  // replicas only: an external service may outlive this plane.
  if (chaos_ != nullptr && !external_mode_) {
    for (size_t i = 0; i < services_.size(); ++i) {
      const int index = static_cast<int>(i);
      services_[i]->set_phase_probe(
          [this, index](const std::string& job_id, int completed_steps,
                        char phase) {
            OnPhase(index, job_id, completed_steps, phase);
          });
    }
  }
}

void ControlPlane::BuildRingLocked() {
  ring_.clear();
  const int virtual_nodes = std::max(1, options_.virtual_nodes);
  for (size_t i = 0; i < services_.size(); ++i) {
    for (int v = 0; v < virtual_nodes; ++v) {
      ring_.emplace_back(
          Mix64((static_cast<uint64_t>(i) << 32) | static_cast<uint64_t>(v)),
          static_cast<int>(i));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

int ControlPlane::RouteLiveLocked(uint64_t hash) const {
  if (ring_.empty()) return -1;
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(hash, -1));
  for (size_t walked = 0; walked < ring_.size(); ++walked) {
    if (it == ring_.end()) it = ring_.begin();
    const int replica = it->second;
    if (replicas_[replica].state == ReplicaState::kUp &&
        !replicas_[replica].service->crashed()) {
      return replica;
    }
    ++it;
  }
  return -1;
}

int ControlPlane::RouteOf(uint64_t fingerprint) const {
  MutexLock lock(mu_);
  if (ring_.empty()) return -1;
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(Mix64(fingerprint), -1));
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

int ControlPlane::LiveCountLocked() const {
  int live = 0;
  for (const Replica& replica : replicas_) {
    if (replica.state == ReplicaState::kUp && !replica.service->crashed()) {
      ++live;
    }
  }
  return live;
}

void ControlPlane::SetTenant(const std::string& tenant, TenantConfig config) {
  MutexLock lock(mu_);
  tenants_[tenant] = config;
}

Result<std::string> ControlPlane::Submit(const WorkflowGraph& graph,
                                         const SubmitRequest& request) {
  MutexLock lock(mu_);
  // Idempotent resubmission: the original admission decision stands, the
  // original job id comes back — across replicas and across failovers.
  if (!request.idempotency_key.empty()) {
    auto it = idempotency_.find(request.idempotency_key);
    if (it != idempotency_.end()) return it->second;
  }
  TenantConfig tenant_config;
  auto tenant_it = tenants_.find(request.tenant);
  if (tenant_it != tenants_.end()) tenant_config = tenant_it->second;
  auto reject = [this, &request](const char* reason) {
    rejected_total_->Increment();
    server_->metrics()
        .GetCounter("ires_admission_rejects_total",
                    "Submissions bounced at admission, by tenant and "
                    "reason.",
                    {{"tenant", request.tenant}, {"reason", reason}})
        ->Increment();
  };
  // Tenant quota, measured against the journal's open-job count so it
  // spans every replica (and survives failover reshuffles).
  if (tenant_config.max_open_jobs > 0 &&
      journal_.OpenCountForTenant(request.tenant) >=
          tenant_config.max_open_jobs) {
    reject("quota");
    return Status::ResourceExhausted(
        "tenant " + request.tenant + " at open-job quota (" +
        std::to_string(tenant_config.max_open_jobs) + ")");
  }
  // Graceful degradation: shed the lowest QoS classes first as aggregate
  // saturation climbs, instead of 429ing everyone at the cliff.
  if (options_.shed_bronze_at > 0.0 || options_.shed_silver_at > 0.0) {
    size_t queued = 0;
    size_t capacity = 0;
    for (JobService* service : services_) {
      queued += service->stats().queue_depth;
      capacity += service->options().queue_capacity;
    }
    const double saturation =
        capacity == 0 ? 0.0
                      : static_cast<double>(queued) /
                            static_cast<double>(capacity);
    const bool shed_bronze = options_.shed_bronze_at > 0.0 &&
                             tenant_config.qos_class >= 2 &&
                             saturation >= options_.shed_bronze_at;
    const bool shed_silver = options_.shed_silver_at > 0.0 &&
                             tenant_config.qos_class >= 1 &&
                             saturation >= options_.shed_silver_at;
    if (shed_bronze || shed_silver) {
      reject("shed");
      return Status::Unavailable(
          "shedding class-" + std::to_string(tenant_config.qos_class) +
          " load at " + std::to_string(saturation) + " saturation");
    }
  }
  const int target = RouteLiveLocked(Mix64(graph.Fingerprint()));
  if (target < 0) {
    reject("no_replica");
    return Status::Unavailable("no live replica");
  }
  JobService::SubmitMeta meta;
  meta.tenant = request.tenant;
  meta.qos_class = tenant_config.qos_class;
  meta.weight = tenant_config.weight;
  meta.idempotency_key = request.idempotency_key;
  meta.replica = target;
  meta.journal = &journal_;
  if (!external_mode_) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "job-%06llu",
                  static_cast<unsigned long long>(next_job_number_++));
    meta.id_override = buf;
  }
  Result<std::string> submitted =
      services_[target]->Submit(graph, request.workflow_name, request.policy,
                                request.exec, request.slo_class, meta);
  if (!submitted.ok()) {
    // Don't burn the minted id on a replica-level reject: callers observe
    // densely numbered ids (reject-then-accept still yields job-000001).
    if (!external_mode_) --next_job_number_;
    return submitted.status();
  }
  const std::string& id = submitted.value();
  JobSpec spec;
  spec.graph = graph;
  spec.workflow_name = request.workflow_name;
  spec.policy = request.policy;
  spec.exec = request.exec;
  spec.slo_class = request.slo_class;
  spec.qos_class = tenant_config.qos_class;
  spec.weight = tenant_config.weight;
  specs_[id] = std::move(spec);
  assignment_[id] = target;
  if (!request.idempotency_key.empty()) {
    idempotency_[request.idempotency_key] = id;
  }
  return id;
}

Result<JobRecord> ControlPlane::Get(const std::string& id) const {
  int target = -1;
  {
    MutexLock lock(mu_);
    auto it = assignment_.find(id);
    if (it != assignment_.end()) target = it->second;
  }
  if (target >= 0) {
    Result<JobRecord> record = services_[target]->Get(id);
    if (record.ok()) return record;
  }
  for (JobService* service : services_) {
    Result<JobRecord> record = service->Get(id);
    if (record.ok()) return record;
  }
  return Status::NotFound("job: " + id);
}

std::vector<JobRecord> ControlPlane::List() const {
  // A failed-over job has a record on every replica it visited; keep the
  // highest incarnation (the one that owned — or still owns — the job).
  std::map<std::string, JobRecord> by_id;
  for (JobService* service : services_) {
    for (JobRecord& record : service->List()) {
      auto it = by_id.find(record.id);
      if (it == by_id.end() || record.incarnation > it->second.incarnation) {
        by_id[record.id] = std::move(record);
      }
    }
  }
  std::vector<JobRecord> out;
  out.reserve(by_id.size());
  for (auto& [id, record] : by_id) out.push_back(std::move(record));
  return out;  // map order == id order == submission order for minted ids
}

Status ControlPlane::Cancel(const std::string& id) {
  int target = -1;
  {
    MutexLock lock(mu_);
    auto it = assignment_.find(id);
    if (it != assignment_.end()) target = it->second;
  }
  if (target >= 0) {
    const Status status = services_[target]->Cancel(id);
    if (status.code() != StatusCode::kNotFound) return status;
  }
  for (JobService* service : services_) {
    const Status status = service->Cancel(id);
    if (status.code() != StatusCode::kNotFound) return status;
  }
  return Status::NotFound("job: " + id);
}

bool ControlPlane::ResubmitLocked(const JobJournal::OpenJob& open,
                                  int target) {
  auto spec_it = specs_.find(open.job);
  if (spec_it == specs_.end()) return false;  // not plane-submitted
  const uint64_t incarnation = journal_.Reassign(open.job, target);
  // 0 means the job raced to terminal between the snapshot and now —
  // whichever of "terminal append" and "Reassign" wins, the loser no-ops.
  if (incarnation == 0) return false;
  const JobSpec& spec = spec_it->second;
  JobService::SubmitMeta meta;
  meta.tenant = open.tenant;
  meta.qos_class = spec.qos_class;
  meta.weight = spec.weight;
  meta.idempotency_key = open.idempotency_key;
  meta.id_override = open.job;
  meta.incarnation = incarnation;
  meta.replica = target;
  meta.journal = &journal_;
  meta.recovered = true;
  IresServer::ExecutionOptions exec = spec.exec;
  // The journaled step outputs seed the planner's materialized-
  // intermediates pruning: the resumed run replans around work already
  // done instead of redoing it.
  exec.resume_materialized = open.materialized;
  assignment_[open.job] = target;
  failovers_.fetch_add(1, std::memory_order_relaxed);
  failovers_total_->Increment();
  JournalWriter(&server_->journal(), open.job)
      .Emit(EventKind::kJobFailover, -1, "", "",
            static_cast<double>(incarnation),
            "incarnation " + std::to_string(incarnation) + " -> replica " +
                std::to_string(target));
  services_[target]->Submit(spec.graph, spec.workflow_name, spec.policy,
                            exec, spec.slo_class, meta);
  return true;
}

void ControlPlane::MarkDownAndFailoverLocked(int index) {
  Replica& replica = replicas_[index];
  if (replica.state == ReplicaState::kDown) return;
  replica.state = ReplicaState::kDown;
  replica.service->SimulateCrash();
  replicas_up_gauge_->Set(static_cast<double>(LiveCountLocked()));
  EmitReplicaState(index, "down");
  // Snapshot-then-reassign: open jobs (with their materialized step
  // prefixes) are read first, then each is fenced and rerouted. Jobs that
  // reach terminal in between are skipped by ResubmitLocked's fence.
  for (const JobJournal::OpenJob& open : journal_.OpenJobsOn(index)) {
    const int target = RouteLiveLocked(HashString(open.job));
    if (target < 0) break;  // stranded; re-adopted on RestartReplica
    ResubmitLocked(open, target);
  }
}

void ControlPlane::KillReplica(int replica) {
  MutexLock lock(mu_);
  MarkDownAndFailoverLocked(replica);
}

void ControlPlane::RestartReplica(int index) {
  MutexLock lock(mu_);
  Replica& replica = replicas_[index];
  replica.service->ClearCrash();
  replica.partitioned = false;
  replica.state = ReplicaState::kUp;
  replica.last_heartbeat = -1.0;  // re-bootstraps on the next Tick
  replicas_up_gauge_->Set(static_cast<double>(LiveCountLocked()));
  EmitReplicaState(index, "up");
  // Re-adopt jobs stranded open on this replica (they had no live
  // failover target when it went down).
  for (const JobJournal::OpenJob& open : journal_.OpenJobsOn(index)) {
    ResubmitLocked(open, index);
  }
}

void ControlPlane::PartitionReplica(int index) {
  MutexLock lock(mu_);
  if (!replicas_[index].partitioned) {
    replicas_[index].partitioned = true;
    EmitReplicaState(index, "partitioned");
  }
}

void ControlPlane::HealReplica(int index) {
  MutexLock lock(mu_);
  Replica& replica = replicas_[index];
  if (replica.partitioned) {
    replica.partitioned = false;
    EmitReplicaState(index, "healed");
  }
  replica.last_heartbeat = -1.0;
}

void ControlPlane::Tick(double now_seconds) {
  MutexLock lock(mu_);
  // Chaos partition: at most one replica per tick stops heartbeating
  // (round-robin over live unpartitioned replicas, never the last one).
  if (chaos_ != nullptr && chaos_->DecidePartition()) {
    const int count = static_cast<int>(replicas_.size());
    for (int step = 0; step < count; ++step) {
      const int i = (partition_cursor_ + step) % count;
      if (replicas_[i].state == ReplicaState::kUp &&
          !replicas_[i].partitioned && LiveCountLocked() > 1) {
        replicas_[i].partitioned = true;
        EmitReplicaState(i, "partitioned");
        partition_cursor_ = i + 1;
        break;
      }
    }
  }
  for (size_t i = 0; i < replicas_.size(); ++i) {
    Replica& replica = replicas_[i];
    if (replica.last_heartbeat < 0.0) replica.last_heartbeat = now_seconds;
    const bool heartbeating = replica.state != ReplicaState::kDown &&
                              !replica.partitioned &&
                              !replica.service->crashed();
    if (heartbeating) replica.last_heartbeat = now_seconds;
    if (replica.state == ReplicaState::kDown) continue;
    const double age = now_seconds - replica.last_heartbeat;
    if (age >= options_.down_after_seconds) {
      MarkDownAndFailoverLocked(static_cast<int>(i));
    } else if (age >= options_.suspect_after_seconds) {
      if (replica.state != ReplicaState::kSuspect) {
        replica.state = ReplicaState::kSuspect;
        EmitReplicaState(static_cast<int>(i), "suspect");
      }
    } else if (replica.state != ReplicaState::kUp) {
      replica.state = ReplicaState::kUp;
      EmitReplicaState(static_cast<int>(i), "up");
    }
  }
}

void ControlPlane::OnPhase(int replica, const std::string& /*job_id*/,
                           int /*completed_steps*/, char phase) {
  if (chaos_ == nullptr) return;
  if (phase != 'p' && phase != 's') return;
  MutexLock lock(mu_);
  if (replicas_[replica].state != ReplicaState::kUp) return;
  if (LiveCountLocked() <= 1) return;  // never kill the last live replica
  if (!chaos_->DecideKill(phase)) return;
  if (chaos_->DecideTorn()) journal_.TearNext();
  MarkDownAndFailoverLocked(replica);
}

ControlPlane::Health ControlPlane::health() const {
  MutexLock lock(mu_);
  Health health;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    const Replica& replica = replicas_[i];
    ReplicaHealth entry;
    entry.id = static_cast<int>(i);
    entry.state = replica.state;
    entry.partitioned = replica.partitioned;
    const JobService::Stats stats = replica.service->stats();
    entry.queue_depth = stats.queue_depth;
    entry.running = stats.running;
    entry.backlog_seconds = replica.service->BacklogSeconds();
    entry.journal_lag = journal_.ReplicaLag(static_cast<int>(i));
    health.queue_depth += entry.queue_depth;
    health.running += entry.running;
    health.queue_capacity += replica.service->options().queue_capacity;
    health.workers += replica.service->options().workers;
    if (entry.state != ReplicaState::kUp) health.degraded = true;
    health.replicas.push_back(entry);
  }
  return health;
}

JobService::Stats ControlPlane::AggregateStats() const {
  // Lifecycle counters are shared registry series — identical pointers in
  // every replica — so read them once and only sum the per-service state.
  JobService::Stats stats = services_[0]->stats();
  stats.queue_depth = 0;
  stats.running = 0;
  stats.workers = 0;
  for (JobService* service : services_) {
    const JobService::Stats s = service->stats();
    stats.queue_depth += s.queue_depth;
    stats.running += s.running;
    stats.workers += s.workers;
  }
  return stats;
}

double ControlPlane::RetryAfterSeconds() const {
  MutexLock lock(mu_);
  double best = -1.0;
  for (const Replica& replica : replicas_) {
    if (replica.state != ReplicaState::kUp || replica.service->crashed()) {
      continue;
    }
    const double backlog = replica.service->BacklogSeconds();
    if (best < 0.0 || backlog < best) best = backlog;
  }
  if (best < 0.0) best = options_.down_after_seconds;  // nothing live
  return std::max(1.0, std::ceil(best));
}

bool ControlPlane::WaitForIdle(double timeout_seconds) const {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  while (true) {
    bool all_idle = true;
    for (JobService* service : services_) {
      if (!service->WaitForIdle(0.05)) all_idle = false;
    }
    // A failover can land new work on an already-checked replica, so only
    // a full all-idle pass counts.
    if (all_idle) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
  }
}

void ControlPlane::EmitReplicaState(int replica, const char* state) const {
  JournalWriter(&server_->journal(), "")
      .Emit(EventKind::kReplicaState, -1, "", state,
            static_cast<double>(replica),
            "replica " + std::to_string(replica) + " " + state);
}

}  // namespace ires
