#ifndef IRES_SERVICE_JOB_JOURNAL_H_
#define IRES_SERVICE_JOB_JOURNAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "planner/execution_plan.h"
#include "telemetry/event_journal.h"

namespace ires {

/// Lifecycle phase of one job-journal record. The write-ahead discipline
/// is: SUBMITTED is appended before the job reaches a replica's queue, and
/// every later transition is appended before the replica acts on it — so a
/// replica crash can lose in-flight work but never the knowledge that the
/// work was accepted.
enum class JournalPhase : uint8_t {
  kSubmitted,      // accepted by the control plane, routed to a replica
  kPlanning,       // replica picked the job up and started planning
  kRunning,        // execution started (detail carries the plan pointer)
  kStepCompleted,  // one plan step's output materialized (artifact payload)
  kTerminal,       // SUCCEEDED / FAILED / CANCELLED — exactly once per job
};

const char* JournalPhaseName(JournalPhase phase);
bool ParseJournalPhase(const std::string& name, JournalPhase* out);

/// One record of the write-ahead job journal.
struct JobJournalRecord {
  uint64_t seq = 0;              // assigned by Append, strictly increasing
  std::string job;               // job id
  uint64_t incarnation = 1;      // fencing token (bumped on failover)
  JournalPhase phase = JournalPhase::kSubmitted;
  int replica = 0;               // replica the record was written for/by
  std::string tenant;            // admission tenant (kSubmitted)
  std::string idempotency_key;   // client dedupe key (kSubmitted, optional)
  std::string workflow;          // workflow name (kSubmitted)
  std::string slo_class;         // SLO class (kSubmitted)
  int step = -1;                 // plan step id (kStepCompleted)
  DatasetInstance artifact;      // materialized output (kStepCompleted)
  std::string state;             // terminal JobState name (kTerminal)
  std::string detail;            // plan pointer / error / free-form
  /// Set when a simulated crash tore this append: the record occupies its
  /// seq slot but Encode emits a truncated line, so replay drops it.
  bool torn = false;
};

/// The write-ahead job journal of the sharded control plane: every
/// accepted job's lifecycle transitions land here with an incarnation
/// fencing token, so that after a replica is killed
///
///   - the control plane can enumerate the replica's open (non-terminal)
///     jobs together with their already-materialized step outputs, and
///     resubmit them to a live replica that resumes from the last
///     journaled step instead of restarting;
///   - any append the dead (or partitioned) incarnation still attempts is
///     fenced: `Reassign` bumps the job's incarnation, and appends carrying
///     a stale token are dropped and counted, which makes the terminal
///     record exactly-once even when the old incarnation was actually
///     alive and finished the job behind a partition.
///
/// The journal is in-process (the repo simulates the distributed control
/// plane in one address space) but the record log round-trips through a
/// crash-tolerant text encoding: Encode/Decode tolerate a torn or
/// truncated final record, which the chaos scheduler exercises by tearing
/// an append mid-crash.
///
/// Thread-safe; the single mutex ranks at kJobJournal so both the control
/// plane (kControlPlane) and replica finalization paths (kJobService) may
/// append while holding their own locks.
class JobJournal {
 public:
  /// `events` (optional) receives kJournalFence / kJournalTorn flight-
  /// recorder events so fencing shows up in postmortems.
  explicit JobJournal(EventJournal* events = nullptr) : events_(events) {}

  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  /// Opens one accepted job: appends its kSubmitted record at incarnation
  /// 1 and registers the assignment. False when the id is already known.
  bool Open(const std::string& job, int replica, const std::string& tenant,
            const std::string& idempotency_key, const std::string& workflow,
            const std::string& slo_class) EXCLUDES(mu_);

  /// Fenced append. Returns false — dropping the record and counting a
  /// fence — when the job is unknown, the record's incarnation is stale,
  /// or the job already holds a terminal record (terminal records are
  /// exactly-once by construction). `record.seq` is assigned on success.
  bool Append(JobJournalRecord record) EXCLUDES(mu_);

  /// Fences the job's current incarnation and reassigns it to
  /// `new_replica`, returning the new incarnation token. Returns 0 — and
  /// changes nothing — when the job is unknown or already terminal, which
  /// is what makes kill-versus-completion races safe: whichever of
  /// "terminal append" and "Reassign" wins, the loser becomes a no-op.
  uint64_t Reassign(const std::string& job, int new_replica) EXCLUDES(mu_);

  uint64_t IncarnationOf(const std::string& job) const EXCLUDES(mu_);
  bool IsTerminal(const std::string& job) const EXCLUDES(mu_);
  /// Terminal JobState name, or "" while the job is open/unknown.
  std::string TerminalState(const std::string& job) const EXCLUDES(mu_);

  /// One open job eligible for failover, with everything a live replica
  /// needs to resume it.
  struct OpenJob {
    std::string job;
    uint64_t incarnation = 1;
    std::string tenant;
    std::string idempotency_key;
    std::string workflow;
    std::string slo_class;
    bool was_running = false;  // reached kRunning before the crash
    /// Folded kStepCompleted artifacts: dataset node -> instance. Seeds
    /// DpPlanner::Options::materialized_intermediates on resume.
    std::map<std::string, DatasetInstance> materialized;
  };

  /// Non-terminal jobs currently assigned to `replica`, oldest first.
  std::vector<OpenJob> OpenJobsOn(int replica) const EXCLUDES(mu_);

  /// Open (non-terminal) jobs accounted to `tenant` — the quota input.
  size_t OpenCountForTenant(const std::string& tenant) const EXCLUDES(mu_);

  /// Arms the crash-during-append fault: the next accepted Append is
  /// recorded torn (present in memory, truncated on the wire).
  void TearNext() EXCLUDES(mu_);

  /// Text encoding of the full log, one record per line; torn records
  /// emit only a line prefix, exactly like a crash mid-write would leave.
  std::string Encode() const EXCLUDES(mu_);

  struct DecodeResult {
    std::vector<JobJournalRecord> records;  // every intact record, in order
    size_t torn = 0;  // unparsable (torn/truncated) lines skipped
  };
  /// Tolerant decode: a torn or truncated final record — or any line a
  /// crash mangled — is counted and skipped, never fatal.
  static DecodeResult Decode(const std::string& text);

  /// Rebuilds the journal state from decoded records (recovery replay).
  /// Existing state is discarded; fencing is not re-applied — the records
  /// were already accepted once.
  void Replay(const std::vector<JobJournalRecord>& records) EXCLUDES(mu_);

  /// Records appended by (for) `replica` lag behind the journal head by
  /// this many sequence numbers — the healthz "journalLag" column.
  uint64_t ReplicaLag(int replica) const EXCLUDES(mu_);

  struct Stats {
    uint64_t appended = 0;  // records accepted (Open + Append)
    uint64_t fenced = 0;    // stale-incarnation / post-terminal drops
    uint64_t torn = 0;      // records recorded torn
    size_t open_jobs = 0;   // known jobs without a terminal record
    uint64_t head_seq = 0;  // last assigned sequence number
  };
  Stats stats() const EXCLUDES(mu_);

  /// All records for one job, in order (test/debug helper).
  std::vector<JobJournalRecord> RecordsFor(const std::string& job) const
      EXCLUDES(mu_);

 private:
  struct JobEntry {
    uint64_t incarnation = 1;
    int replica = 0;
    std::string tenant;
    std::string idempotency_key;
    std::string workflow;
    std::string slo_class;
    bool was_running = false;
    bool terminal = false;
    std::string terminal_state;
    std::map<std::string, DatasetInstance> materialized;
    uint64_t opened_seq = 0;  // orders OpenJobsOn results
  };

  void ApplyLocked(const JobJournalRecord& record) REQUIRES(mu_);
  void EmitFence(const JobJournalRecord& record) const;

  EventJournal* events_;
  mutable Mutex mu_{LockRank::kJobJournal, "jobs.journal"};
  std::vector<JobJournalRecord> log_ GUARDED_BY(mu_);
  std::map<std::string, JobEntry> jobs_ GUARDED_BY(mu_);
  std::map<std::string, size_t> open_by_tenant_ GUARDED_BY(mu_);
  std::map<int, uint64_t> last_seq_by_replica_ GUARDED_BY(mu_);
  uint64_t next_seq_ GUARDED_BY(mu_) = 1;
  uint64_t fenced_ GUARDED_BY(mu_) = 0;
  uint64_t torn_ GUARDED_BY(mu_) = 0;
  bool tear_next_ GUARDED_BY(mu_) = false;
};

}  // namespace ires

#endif  // IRES_SERVICE_JOB_JOURNAL_H_
