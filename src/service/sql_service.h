#ifndef IRES_SERVICE_SQL_SERVICE_H_
#define IRES_SERVICE_SQL_SERVICE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/ires_server.h"
#include "sql/catalog.h"
#include "sql/lowering.h"
#include "sql/musqle_optimizer.h"
#include "sql/sql_engine.h"
#include "telemetry/metrics_registry.h"
#include "threading/task_scheduler.h"

namespace ires {

/// The SQL front door of the serving stack: parses a query, runs the MuSQLE
/// multi-engine optimizer over the federated fleet, and lowers the winning
/// plan onto the server's workflow stack — so a SQL submission flows through
/// the exact same admission control, static analysis, plan cache, tracing
/// and recovery machinery as any other workflow.
///
/// Repeated query *shapes* (same query modulo literal values) are served
/// from an internal shape cache: parse/optimize/lower are skipped and — more
/// importantly — no library artefact is re-registered, so the operator
/// library version stays put and the planner-level PlanCache returns the
/// previously computed ExecutionPlan warm.
///
/// Telemetry (in the server's registry):
///   ires_sql_queries_total{outcome=...}   accepted / rejected submissions
///   ires_sql_shape_cache_hits_total / ires_sql_shape_cache_misses_total
///   ires_sql_optimize_seconds             MuSQLE enumeration latency
///   ires_sql_lowered_nodes_total{kind=scan|join|move}
class SqlService {
 public:
  struct Options {
    /// TPC-H catalog scale (GB) behind the federated fleet.
    double tpch_scale_gb = 10.0;
    /// Degree of parallel DPccp enumeration (0 = enumerate serially on
    /// the caller). Plans are bit-identical either way.
    int optimizer_threads = 4;
    /// Execution substrate for the enumeration fan-out; null uses the
    /// server's shared scheduler (when optimizer_threads > 0).
    TaskScheduler* scheduler = nullptr;
    sql::MusqleOptimizer::Options optimizer;
  };

  explicit SqlService(IresServer* server) : SqlService(server, Options()) {}
  SqlService(IresServer* server, Options options);

  SqlService(const SqlService&) = delete;
  SqlService& operator=(const SqlService&) = delete;

  /// A query made ready for submission: optimized, lowered and with its
  /// workflow artefacts registered in the server's library.
  struct PreparedQuery {
    std::string shape_id;       // sqlq_<hash> — doubles as the workflow name
    std::string shape;          // canonical parameterized form
    std::string result_engine;  // engine holding the final result
    double estimated_seconds = 0.0;  // MuSQLE's plan cost estimate
    int scan_ops = 0;
    int join_ops = 0;
    int move_ops = 0;
    bool shape_cache_hit = false;
    WorkflowGraph graph;
  };

  /// Parses + optimizes + lowers `sql_text`. On a user error (bad SQL,
  /// unknown table/column, unsupported or infeasible query) the returned
  /// status is the underlying failure and `diagnostics` receives one SQxxx
  /// finding describing it — the REST layer renders those as the structured
  /// 422 envelope. Internal errors leave `diagnostics` empty.
  Result<PreparedQuery> Prepare(const std::string& sql_text,
                                std::vector<Diagnostic>* diagnostics)
      EXCLUDES(mu_);

  const sql::Catalog& catalog() const { return catalog_; }

  /// Entries currently held by the shape cache.
  size_t shape_cache_size() const EXCLUDES(mu_);

 private:
  IresServer* server_;
  Options options_;
  sql::Catalog catalog_;
  std::map<std::string, std::unique_ptr<sql::SqlEngine>> engines_;
  std::unique_ptr<sql::MusqleOptimizer> optimizer_;

  /// Guards only the shape cache; the miss path (parse, optimize, lower)
  /// runs between the probe and the insert, so the optimizer's scheduler
  /// fan-out never happens under this lock.
  mutable Mutex mu_{LockRank::kSqlShapeCache, "sql.shape_cache"};
  std::map<std::string, PreparedQuery> shape_cache_ GUARDED_BY(mu_);

  Counter* shape_hits_;
  Counter* shape_misses_;
  Histogram* optimize_seconds_;
};

}  // namespace ires

#endif  // IRES_SERVICE_SQL_SERVICE_H_
