#include "service/job_journal.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace ires {

namespace {

struct PhaseName {
  JournalPhase phase;
  const char* name;
};

constexpr PhaseName kPhaseNames[] = {
    {JournalPhase::kSubmitted, "submitted"},
    {JournalPhase::kPlanning, "planning"},
    {JournalPhase::kRunning, "running"},
    {JournalPhase::kStepCompleted, "step_completed"},
    {JournalPhase::kTerminal, "terminal"},
};

/// Wire escaping for free-form fields: '|' separates fields and '\n'
/// separates records, so both (plus the escape char itself) are
/// percent-encoded.
std::string EscapeField(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '%': out += "%25"; break;
      case '|': out += "%7C"; break;
      case '\n': out += "%0A"; break;
      default: out += c;
    }
  }
  return out;
}

bool UnescapeField(const std::string& text, std::string* out) {
  out->clear();
  out->reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '%') {
      *out += text[i];
      continue;
    }
    if (i + 2 >= text.size()) return false;
    const std::string hex = text.substr(i + 1, 2);
    if (hex == "25") *out += '%';
    else if (hex == "7C") *out += '|';
    else if (hex == "0A") *out += '\n';
    else return false;
    i += 2;
  }
  return true;
}

std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t bar = line.find('|', start);
    if (bar == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, bar - start));
    start = bar + 1;
  }
}

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(text.c_str(), &end, 10);
  return end == text.c_str() + text.size();
}

bool ParseInt(const std::string& text, int* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = static_cast<int>(std::strtol(text.c_str(), &end, 10));
  return end == text.c_str() + text.size();
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

constexpr size_t kWireFields = 17;

std::string EncodeRecord(const JobJournalRecord& r) {
  char numeric[160];
  std::snprintf(numeric, sizeof(numeric), "%llu|%llu|%d|%d|%.1f|%.1f",
                static_cast<unsigned long long>(r.seq),
                static_cast<unsigned long long>(r.incarnation), r.replica,
                r.step, r.artifact.bytes, r.artifact.records);
  // v1|seq|inc|replica|step|bytes|records|phase|job|tenant|ikey|workflow|
  // slo|node|store|format|state|detail  — the numeric prefix first so a
  // torn suffix only ever loses string payload, like a real torn page.
  std::string line = "v1|";
  line += numeric;
  line += "|";
  line += JournalPhaseName(r.phase);
  for (const std::string* field :
       {&r.job, &r.tenant, &r.idempotency_key, &r.workflow, &r.slo_class,
        &r.artifact.dataset_node, &r.artifact.store, &r.artifact.format,
        &r.state, &r.detail}) {
    line += "|";
    line += EscapeField(*field);
  }
  return line;
}

bool DecodeRecord(const std::string& line, JobJournalRecord* out) {
  const std::vector<std::string> fields = SplitFields(line);
  if (fields.size() != kWireFields + 1 || fields[0] != "v1") return false;
  uint64_t u = 0;
  int i = 0;
  double d = 0.0;
  if (!ParseU64(fields[1], &u)) return false;
  out->seq = u;
  if (!ParseU64(fields[2], &u)) return false;
  out->incarnation = u;
  if (!ParseInt(fields[3], &i)) return false;
  out->replica = i;
  if (!ParseInt(fields[4], &i)) return false;
  out->step = i;
  if (!ParseDouble(fields[5], &d)) return false;
  out->artifact.bytes = d;
  if (!ParseDouble(fields[6], &d)) return false;
  out->artifact.records = d;
  if (!ParseJournalPhase(fields[7], &out->phase)) return false;
  std::string* strings[] = {&out->job,
                            &out->tenant,
                            &out->idempotency_key,
                            &out->workflow,
                            &out->slo_class,
                            &out->artifact.dataset_node,
                            &out->artifact.store,
                            &out->artifact.format,
                            &out->state,
                            &out->detail};
  for (size_t f = 0; f < 10; ++f) {
    if (!UnescapeField(fields[8 + f], strings[f])) return false;
  }
  return true;
}

}  // namespace

const char* JournalPhaseName(JournalPhase phase) {
  for (const PhaseName& entry : kPhaseNames) {
    if (entry.phase == phase) return entry.name;
  }
  return "?";
}

bool ParseJournalPhase(const std::string& name, JournalPhase* out) {
  for (const PhaseName& entry : kPhaseNames) {
    if (name == entry.name) {
      *out = entry.phase;
      return true;
    }
  }
  return false;
}

void JobJournal::EmitFence(const JobJournalRecord& record) const {
  if (events_ == nullptr) return;
  JournalWriter(events_, record.job)
      .Emit(EventKind::kJournalFence, record.step, "",
            JournalPhaseName(record.phase),
            static_cast<double>(record.incarnation), record.state);
}

void JobJournal::ApplyLocked(const JobJournalRecord& record) {
  JobEntry& entry = jobs_[record.job];
  switch (record.phase) {
    case JournalPhase::kSubmitted:
      entry.incarnation = record.incarnation;
      entry.replica = record.replica;
      entry.tenant = record.tenant;
      entry.idempotency_key = record.idempotency_key;
      entry.workflow = record.workflow;
      entry.slo_class = record.slo_class;
      entry.opened_seq = record.seq;
      ++open_by_tenant_[record.tenant];
      break;
    case JournalPhase::kPlanning:
      break;
    case JournalPhase::kRunning:
      entry.was_running = true;
      break;
    case JournalPhase::kStepCompleted:
      entry.materialized[record.artifact.dataset_node] = record.artifact;
      break;
    case JournalPhase::kTerminal: {
      entry.terminal = true;
      entry.terminal_state = record.state;
      auto it = open_by_tenant_.find(entry.tenant);
      if (it != open_by_tenant_.end() && it->second > 0) --it->second;
      break;
    }
  }
  last_seq_by_replica_[record.replica] = record.seq;
}

bool JobJournal::Open(const std::string& job, int replica,
                      const std::string& tenant,
                      const std::string& idempotency_key,
                      const std::string& workflow,
                      const std::string& slo_class) {
  MutexLock lock(mu_);
  if (jobs_.count(job) > 0) return false;
  JobJournalRecord record;
  record.seq = next_seq_++;
  record.job = job;
  record.incarnation = 1;
  record.phase = JournalPhase::kSubmitted;
  record.replica = replica;
  record.tenant = tenant;
  record.idempotency_key = idempotency_key;
  record.workflow = workflow;
  record.slo_class = slo_class;
  if (tear_next_) {
    tear_next_ = false;
    record.torn = true;
    ++torn_;
  }
  ApplyLocked(record);
  log_.push_back(std::move(record));
  return true;
}

bool JobJournal::Append(JobJournalRecord record) {
  bool fenced = false;
  {
    MutexLock lock(mu_);
    auto it = jobs_.find(record.job);
    if (it == jobs_.end() || record.incarnation < it->second.incarnation ||
        it->second.terminal) {
      ++fenced_;
      fenced = true;
    } else {
      record.seq = next_seq_++;
      record.replica = it->second.replica;
      if (tear_next_) {
        tear_next_ = false;
        record.torn = true;
        ++torn_;
      }
      ApplyLocked(record);
      log_.push_back(std::move(record));
      return true;
    }
  }
  // Fence events are emitted outside mu_: EmitFence locks journal shards.
  if (fenced) EmitFence(record);
  return false;
}

uint64_t JobJournal::Reassign(const std::string& job, int new_replica) {
  MutexLock lock(mu_);
  auto it = jobs_.find(job);
  if (it == jobs_.end() || it->second.terminal) return 0;
  it->second.incarnation += 1;
  it->second.replica = new_replica;
  return it->second.incarnation;
}

uint64_t JobJournal::IncarnationOf(const std::string& job) const {
  MutexLock lock(mu_);
  auto it = jobs_.find(job);
  return it == jobs_.end() ? 0 : it->second.incarnation;
}

bool JobJournal::IsTerminal(const std::string& job) const {
  MutexLock lock(mu_);
  auto it = jobs_.find(job);
  return it != jobs_.end() && it->second.terminal;
}

std::string JobJournal::TerminalState(const std::string& job) const {
  MutexLock lock(mu_);
  auto it = jobs_.find(job);
  return it == jobs_.end() ? "" : it->second.terminal_state;
}

std::vector<JobJournal::OpenJob> JobJournal::OpenJobsOn(int replica) const {
  MutexLock lock(mu_);
  std::vector<std::pair<uint64_t, OpenJob>> found;
  for (const auto& [id, entry] : jobs_) {
    if (entry.terminal || entry.replica != replica) continue;
    OpenJob open;
    open.job = id;
    open.incarnation = entry.incarnation;
    open.tenant = entry.tenant;
    open.idempotency_key = entry.idempotency_key;
    open.workflow = entry.workflow;
    open.slo_class = entry.slo_class;
    open.was_running = entry.was_running;
    open.materialized = entry.materialized;
    found.emplace_back(entry.opened_seq, std::move(open));
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<OpenJob> out;
  out.reserve(found.size());
  for (auto& [seq, open] : found) out.push_back(std::move(open));
  return out;
}

size_t JobJournal::OpenCountForTenant(const std::string& tenant) const {
  MutexLock lock(mu_);
  auto it = open_by_tenant_.find(tenant);
  return it == open_by_tenant_.end() ? 0 : it->second;
}

void JobJournal::TearNext() {
  MutexLock lock(mu_);
  tear_next_ = true;
}

std::string JobJournal::Encode() const {
  MutexLock lock(mu_);
  std::string out;
  for (const JobJournalRecord& record : log_) {
    std::string line = EncodeRecord(record);
    if (record.torn) {
      // A crash mid-write leaves a prefix with no terminator. The writer
      // realigns to a fresh line when it reopens the log (tail
      // truncation), so later appends survive — only the torn record's
      // own payload is lost.
      out += line.substr(0, line.size() / 2);
      out += "\n";
      continue;
    }
    out += line;
    out += "\n";
  }
  return out;
}

JobJournal::DecodeResult JobJournal::Decode(const std::string& text) {
  DecodeResult result;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    const bool unterminated = end == std::string::npos;
    if (unterminated) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    JobJournalRecord record;
    // An unterminated final line is torn by definition — even if its text
    // happens to parse, the write never committed.
    if (unterminated || !DecodeRecord(line, &record)) {
      ++result.torn;
      continue;
    }
    result.records.push_back(std::move(record));
  }
  return result;
}

void JobJournal::Replay(const std::vector<JobJournalRecord>& records) {
  MutexLock lock(mu_);
  log_.clear();
  jobs_.clear();
  open_by_tenant_.clear();
  last_seq_by_replica_.clear();
  next_seq_ = 1;
  fenced_ = 0;
  torn_ = 0;
  tear_next_ = false;
  for (const JobJournalRecord& record : records) {
    JobJournalRecord copy = record;
    copy.torn = false;
    if (copy.seq >= next_seq_) next_seq_ = copy.seq + 1;
    // A replayed SUBMITTED may carry an incarnation > 1 is impossible on
    // the wire (Open always writes 1), so ApplyLocked is sufficient.
    ApplyLocked(copy);
    // Replay keeps the journal's fencing current: later records may carry
    // a bumped incarnation after a pre-crash Reassign survived only in
    // the records themselves.
    auto it = jobs_.find(copy.job);
    if (it != jobs_.end() && copy.incarnation > it->second.incarnation) {
      it->second.incarnation = copy.incarnation;
    }
    log_.push_back(std::move(copy));
  }
}

uint64_t JobJournal::ReplicaLag(int replica) const {
  MutexLock lock(mu_);
  const uint64_t head = next_seq_ - 1;
  auto it = last_seq_by_replica_.find(replica);
  const uint64_t last = it == last_seq_by_replica_.end() ? 0 : it->second;
  return head >= last ? head - last : 0;
}

JobJournal::Stats JobJournal::stats() const {
  MutexLock lock(mu_);
  Stats s;
  s.appended = next_seq_ - 1;
  s.fenced = fenced_;
  s.torn = torn_;
  s.head_seq = next_seq_ - 1;
  for (const auto& [id, entry] : jobs_) {
    if (!entry.terminal) ++s.open_jobs;
  }
  return s;
}

std::vector<JobJournalRecord> JobJournal::RecordsFor(
    const std::string& job) const {
  MutexLock lock(mu_);
  std::vector<JobJournalRecord> out;
  for (const JobJournalRecord& record : log_) {
    if (record.job == job) out.push_back(record);
  }
  return out;
}

}  // namespace ires
