#include "service/job_service.h"

#include <chrono>
#include <cstdio>

namespace ires {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued: return "QUEUED";
    case JobState::kPlanning: return "PLANNING";
    case JobState::kRunning: return "RUNNING";
    case JobState::kSucceeded: return "SUCCEEDED";
    case JobState::kFailed: return "FAILED";
    case JobState::kCancelled: return "CANCELLED";
  }
  return "?";
}

bool IsTerminal(JobState state) {
  return state == JobState::kSucceeded || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

JobService::JobService(IresServer* server) : JobService(server, Options()) {}

JobService::JobService(IresServer* server, Options options)
    : server_(server), options_(options) {
  MetricsRegistry& metrics = server_->metrics();
  const std::string help = "Terminal job outcomes plus admission events.";
  submitted_total_ =
      metrics.GetCounter("ires_jobs_total", help, {{"event", "submitted"}});
  rejected_total_ =
      metrics.GetCounter("ires_jobs_total", help, {{"event", "rejected"}});
  succeeded_total_ =
      metrics.GetCounter("ires_jobs_total", help, {{"event", "succeeded"}});
  failed_total_ =
      metrics.GetCounter("ires_jobs_total", help, {{"event", "failed"}});
  cancelled_total_ =
      metrics.GetCounter("ires_jobs_total", help, {{"event", "cancelled"}});
  queued_gauge_ = metrics.GetGauge("ires_jobs_queued",
                                   "Jobs admitted and awaiting a worker.");
  active_gauge_ = metrics.GetGauge("ires_jobs_active",
                                   "Jobs currently PLANNING or RUNNING.");
  queue_wait_seconds_ = metrics.GetHistogram(
      "ires_job_queue_wait_seconds",
      "Wall-clock wait between admission and worker pickup.");
  job_duration_seconds_ = metrics.GetHistogram(
      "ires_job_duration_seconds",
      "Wall-clock submission-to-terminal latency per job.");
  sched_ = options_.scheduler != nullptr ? options_.scheduler
                                         : &server_->scheduler();
}

JobService::~JobService() { Shutdown(); }

Result<std::string> JobService::Submit(
    const WorkflowGraph& graph, const std::string& workflow_name,
    OptimizationPolicy policy, const IresServer::ExecutionOptions& exec,
    const std::string& slo_class) {
  // Rejections carry no job id (none was assigned); the workflow name in
  // the detail is the correlation handle instead.
  const JournalWriter reject_writer(&server_->journal(), "");
  // Admission gate: lint the workflow against the current library/engines
  // before it costs a queue slot or a worker. Runs outside mu_ — the
  // analyzer only reads internally synchronized registries.
  {
    const std::vector<Diagnostic> findings =
        server_->ValidateWorkflow(graph, &policy);
    if (HasErrors(findings)) {
      rejected_total_->Increment();
      CountValidationRejects(&server_->metrics(), findings);
      std::string code;
      for (const Diagnostic& finding : findings) {
        if (finding.severity == DiagSeverity::kError) {
          code = finding.code;
          break;
        }
      }
      reject_writer.Emit(EventKind::kAdmissionReject, -1, "", code, 0.0,
                         workflow_name);
      return DiagnosticsToStatus(findings);
    }
  }
  std::shared_ptr<Job> job;
  {
    MutexLock lock(mu_);
    if (shutting_down_) {
      return Status::FailedPrecondition("job service is shutting down");
    }
    if (queued_ >= options_.queue_capacity) {
      rejected_total_->Increment();
      reject_writer.Emit(EventKind::kAdmissionReject, -1, "",
                         "ResourceExhausted",
                         static_cast<double>(queued_), workflow_name);
      return Status::ResourceExhausted(
          "admission queue full (" +
          std::to_string(options_.queue_capacity) + " queued jobs)");
    }
    char id[32];
    std::snprintf(id, sizeof(id), "job-%06llu",
                  static_cast<unsigned long long>(next_job_number_++));
    job = std::make_shared<Job>();
    job->graph = graph;
    job->exec = exec;
    job->record.id = id;
    job->record.workflow = workflow_name;
    job->record.policy = policy;
    job->record.state = JobState::kQueued;
    job->record.slo_class = slo_class;
    job->record.submitted_at = NowSeconds();
    job->record.trace = std::make_shared<TraceContext>(job->record.id);
    job->queue_span =
        job->record.trace->BeginSpan("job.queue_wait", "job");
    jobs_.emplace(job->record.id, job);
    submission_order_.push_back(job->record.id);
    ++queued_;
    queued_gauge_->Set(static_cast<double>(queued_));
    submitted_total_->Increment();
    JournalWriter(&server_->journal(), job->record.id)
        .Emit(EventKind::kAdmissionAccept, -1, "", slo_class,
              static_cast<double>(queued_), workflow_name);
    run_queue_.push_back(job);
    DispatchLocked();
  }
  return job->record.id;
}

void JobService::DispatchLocked() {
  while (dispatched_ < static_cast<size_t>(options_.workers) &&
         !run_queue_.empty()) {
    std::shared_ptr<Job> job = run_queue_.front();
    run_queue_.pop_front();
    if (IsTerminal(job->record.state)) continue;  // cancelled while queued
    ++dispatched_;
    if (!sched_->Submit([this, job] { RunJob(job); }, "job.run")) {
      // The scheduler has shut down under us (it journals the
      // task_rejected) — terminate the record instead of stranding it.
      --dispatched_;
      if (job->record.state == JobState::kQueued) {
        job->record.state = JobState::kCancelled;
        --queued_;
        queued_gauge_->Set(static_cast<double>(queued_));
        FinalizeLocked(job.get());
      }
    }
  }
}

/// Events attached to a failed job record — enough to replay admission,
/// planning, every retry round and the terminal failure.
constexpr size_t kFailureSnapshotEvents = 64;

void JobService::FinalizeLocked(Job* job) {
  job->record.finished_at = NowSeconds();
  switch (job->record.state) {
    case JobState::kSucceeded: succeeded_total_->Increment(); break;
    case JobState::kFailed: failed_total_->Increment(); break;
    case JobState::kCancelled: cancelled_total_->Increment(); break;
    default: break;
  }
  if (job->record.state == JobState::kFailed) {
    // Journal the terminal event first so the snapshot includes it, then
    // pin the job's event stream to the record — the ring buffer will
    // eventually overwrite these events, but the postmortem keeps them.
    EventJournal& journal = server_->journal();
    JournalWriter(&journal, job->record.id)
        .Emit(EventKind::kJobFailed, -1, "", "", 0.0, job->record.error);
    EventJournal::Filter filter;
    filter.job = job->record.id;
    filter.limit = kFailureSnapshotEvents;
    job->record.event_snapshot = journal.Query(filter);
  }
  // A job cancelled before pickup never measured its queue wait — the
  // whole lifetime *was* the queue wait.
  if (job->record.queue_seconds == 0.0 && job->record.started_at == 0.0) {
    job->record.queue_seconds =
        job->record.finished_at - job->record.submitted_at;
    job->record.trace->EndSpan(
        job->queue_span, {{"outcome", JobStateName(job->record.state)}});
  }
  job_duration_seconds_->Observe(job->record.finished_at -
                                 job->record.submitted_at);
  idle_.notify_all();
}

void JobService::RunJob(const std::shared_ptr<Job>& job) {
  ExecuteJob(job);
  MutexLock lock(mu_);
  --dispatched_;
  DispatchLocked();
  if (dispatched_ == 0) idle_.notify_all();  // Shutdown waits on this
}

void JobService::ExecuteJob(const std::shared_ptr<Job>& job) {
  OptimizationPolicy policy;
  TraceContext* trace = job->record.trace.get();
  uint64_t plan_span = 0;
  {
    MutexLock lock(mu_);
    if (job->record.state != JobState::kQueued) return;  // cancelled earlier
    if (job->cancel_requested || shutting_down_) {
      job->record.state = JobState::kCancelled;
      --queued_;
      queued_gauge_->Set(static_cast<double>(queued_));
      FinalizeLocked(job.get());
      return;
    }
    job->record.state = JobState::kPlanning;
    job->record.started_at = NowSeconds();
    job->record.queue_seconds =
        job->record.started_at - job->record.submitted_at;
    queue_wait_seconds_->Observe(job->record.queue_seconds);
    trace->EndSpan(job->queue_span, {{"outcome", "picked_up"}});
    plan_span = trace->BeginSpan("job.plan", "job");
    --queued_;
    ++active_;
    queued_gauge_->Set(static_cast<double>(queued_));
    active_gauge_->Set(static_cast<double>(active_));
    policy = job->record.policy;
  }

  auto planned = server_->PlanWorkflowCached(job->graph, policy, trace);

  double exec_started_at = 0.0;
  {
    MutexLock lock(mu_);
    job->record.plan_seconds = NowSeconds() - job->record.started_at;
    if (!planned.ok()) {
      trace->EndSpan(plan_span, {{"ok", "false"}});
      job->record.state = JobState::kFailed;
      job->record.error = planned.status().ToString();
      --active_;
      active_gauge_->Set(static_cast<double>(active_));
      FinalizeLocked(job.get());
      return;
    }
    const ExecutionPlan& plan = planned.value().plan;
    trace->EndSpan(plan_span,
                   {{"ok", "true"},
                    {"cache", planned.value().cache_hit ? "hit" : "miss"},
                    {"steps", std::to_string(plan.steps.size())}});
    job->record.plan_summary = plan.ToString();
    job->record.plan_steps = static_cast<int>(plan.steps.size());
    job->record.estimated_seconds = plan.estimated_seconds;
    job->record.estimated_cost = plan.estimated_cost;
    job->record.plan_cache_hit = planned.value().cache_hit;
    // Cancellation window between planning and execution: once the
    // enforcer starts, the run is not preemptible.
    if (job->cancel_requested) {
      job->record.state = JobState::kCancelled;
      --active_;
      active_gauge_->Set(static_cast<double>(active_));
      FinalizeLocked(job.get());
      return;
    }
    job->record.state = JobState::kRunning;
    exec_started_at = NowSeconds();
  }

  IresServer::WorkflowRunResult result = server_->ExecutePlanned(
      job->graph, policy, planned.value(), trace, job->exec);

  {
    MutexLock lock(mu_);
    job->record.outcome = std::move(result.recovery);
    job->record.chaos_injected = result.chaos_injected;
    job->record.exec_wall_seconds = NowSeconds() - exec_started_at;
    --active_;
    active_gauge_->Set(static_cast<double>(active_));
    if (job->record.outcome.status.ok()) {
      job->record.state = JobState::kSucceeded;
    } else {
      job->record.state = JobState::kFailed;
      job->record.error = job->record.outcome.status.ToString();
    }
    FinalizeLocked(job.get());
  }
}

Result<JobRecord> JobService::Get(const std::string& id) const {
  MutexLock lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::NotFound("job: " + id);
  return it->second->record;
}

std::vector<JobRecord> JobService::List() const {
  MutexLock lock(mu_);
  std::vector<JobRecord> out;
  out.reserve(submission_order_.size());
  for (const std::string& id : submission_order_) {
    out.push_back(jobs_.at(id)->record);
  }
  return out;
}

Status JobService::Cancel(const std::string& id) {
  MutexLock lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::NotFound("job: " + id);
  Job& job = *it->second;
  if (IsTerminal(job.record.state)) {
    return Status::FailedPrecondition(
        "job " + id + " already " + JobStateName(job.record.state));
  }
  if (job.record.state == JobState::kQueued) {
    job.record.state = JobState::kCancelled;
    --queued_;
    queued_gauge_->Set(static_cast<double>(queued_));
    FinalizeLocked(&job);
    return Status::OK();
  }
  // PLANNING / RUNNING: honoured at the next preemption point.
  job.cancel_requested = true;
  return Status::OK();
}

JobService::Stats JobService::stats() const {
  MutexLock lock(mu_);
  Stats s;
  s.submitted = submitted_total_->Value();
  s.rejected = rejected_total_->Value();
  s.succeeded = succeeded_total_->Value();
  s.failed = failed_total_->Value();
  s.cancelled = cancelled_total_->Value();
  s.queue_depth = queued_;
  s.running = active_;
  s.workers = options_.workers;
  return s;
}

bool JobService::WaitForIdle(double timeout_seconds) const {
  MutexLock lock(mu_);
  // condition_variable_any waits on the Mutex itself, so the rank registry
  // tracks the release/reacquire cycles inside the wait.
  // Analysis waiver: the predicate runs with mu_ held (the cv reacquires
  // it before every evaluation), but the lambda is a separate function the
  // analysis cannot see that from.
  return idle_.wait_for(
      mu_, std::chrono::duration<double>(timeout_seconds),
      [this]() NO_THREAD_SAFETY_ANALYSIS {
        return queued_ == 0 && active_ == 0;
      });
}

void JobService::Shutdown() {
  MutexLock lock(mu_);
  shutting_down_ = true;
  // Undispatched jobs never reach the scheduler again.
  run_queue_.clear();
  // Dispatched jobs drain on the (still running) shared scheduler: ones
  // still QUEUED observe shutting_down_ and self-cancel, PLANNING/RUNNING
  // ones finish. The scheduler itself is the server's — never stopped here.
  // Analysis waiver: predicate evaluated with mu_ held by the cv (see
  // WaitForIdle).
  idle_.wait(mu_, [this]() NO_THREAD_SAFETY_ANALYSIS {
    return dispatched_ == 0;
  });
  // Sweep whatever never ran to CANCELLED so every record still reaches a
  // terminal state.
  for (auto& [id, job] : jobs_) {
    if (job->record.state == JobState::kQueued) {
      job->record.state = JobState::kCancelled;
      --queued_;
      FinalizeLocked(job.get());
    }
  }
  queued_gauge_->Set(static_cast<double>(queued_));
  idle_.notify_all();
}

}  // namespace ires
