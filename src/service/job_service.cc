#include "service/job_service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "service/job_journal.h"

namespace ires {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued: return "QUEUED";
    case JobState::kPlanning: return "PLANNING";
    case JobState::kRunning: return "RUNNING";
    case JobState::kSucceeded: return "SUCCEEDED";
    case JobState::kFailed: return "FAILED";
    case JobState::kCancelled: return "CANCELLED";
  }
  return "?";
}

bool IsTerminal(JobState state) {
  return state == JobState::kSucceeded || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

JobService::JobService(IresServer* server) : JobService(server, Options()) {}

JobService::JobService(IresServer* server, Options options)
    : server_(server), options_(options) {
  MetricsRegistry& metrics = server_->metrics();
  const std::string help = "Terminal job outcomes plus admission events.";
  submitted_total_ =
      metrics.GetCounter("ires_jobs_total", help, {{"event", "submitted"}});
  rejected_total_ =
      metrics.GetCounter("ires_jobs_total", help, {{"event", "rejected"}});
  succeeded_total_ =
      metrics.GetCounter("ires_jobs_total", help, {{"event", "succeeded"}});
  failed_total_ =
      metrics.GetCounter("ires_jobs_total", help, {{"event", "failed"}});
  cancelled_total_ =
      metrics.GetCounter("ires_jobs_total", help, {{"event", "cancelled"}});
  preempted_total_ =
      metrics.GetCounter("ires_jobs_total", help, {{"event", "preempted"}});
  queued_gauge_ = metrics.GetGauge("ires_jobs_queued",
                                   "Jobs admitted and awaiting a worker.");
  active_gauge_ = metrics.GetGauge("ires_jobs_active",
                                   "Jobs currently PLANNING or RUNNING.");
  queue_wait_seconds_ = metrics.GetHistogram(
      "ires_job_queue_wait_seconds",
      "Wall-clock wait between admission and worker pickup.");
  job_duration_seconds_ = metrics.GetHistogram(
      "ires_job_duration_seconds",
      "Wall-clock submission-to-terminal latency per job.");
  sched_ = options_.scheduler != nullptr ? options_.scheduler
                                         : &server_->scheduler();
}

JobService::~JobService() { Shutdown(); }

Result<std::string> JobService::Submit(
    const WorkflowGraph& graph, const std::string& workflow_name,
    OptimizationPolicy policy, const IresServer::ExecutionOptions& exec,
    const std::string& slo_class) {
  return Submit(graph, workflow_name, policy, exec, slo_class, SubmitMeta());
}

Result<std::string> JobService::Submit(
    const WorkflowGraph& graph, const std::string& workflow_name,
    OptimizationPolicy policy, const IresServer::ExecutionOptions& exec,
    const std::string& slo_class, const SubmitMeta& meta) {
  // Rejections carry no job id (none was assigned); the workflow name in
  // the detail is the correlation handle instead.
  const JournalWriter reject_writer(&server_->journal(), "");
  auto count_admission_reject = [this, &meta](const char* reason) {
    rejected_total_->Increment();
    server_->metrics()
        .GetCounter("ires_admission_rejects_total",
                    "Submissions bounced at admission, by tenant and "
                    "reason.",
                    {{"tenant", meta.tenant}, {"reason", reason}})
        ->Increment();
  };
  if (crashed()) {
    count_admission_reject("replica_down");
    reject_writer.Emit(EventKind::kAdmissionReject, -1, "", "Unavailable",
                       0.0, workflow_name);
    return Status::Unavailable("replica is down");
  }
  // Admission gate: lint the workflow against the current library/engines
  // before it costs a queue slot or a worker. Runs outside mu_ — the
  // analyzer only reads internally synchronized registries. Failover
  // resubmissions were validated at first admission and skip the gate.
  if (!meta.recovered) {
    const std::vector<Diagnostic> findings =
        server_->ValidateWorkflow(graph, &policy);
    if (HasErrors(findings)) {
      count_admission_reject("validation");
      CountValidationRejects(&server_->metrics(), findings, meta.tenant);
      std::string code;
      for (const Diagnostic& finding : findings) {
        if (finding.severity == DiagSeverity::kError) {
          code = finding.code;
          break;
        }
      }
      reject_writer.Emit(EventKind::kAdmissionReject, -1, "", code, 0.0,
                         workflow_name);
      return DiagnosticsToStatus(findings);
    }
  }
  std::shared_ptr<Job> job;
  {
    MutexLock lock(mu_);
    if (shutting_down_) {
      return Status::FailedPrecondition("job service is shutting down");
    }
    // A full queue preempts a strictly-lower-class QUEUED job to admit a
    // higher-class newcomer; failover resubmissions bypass the bound
    // entirely (the job already paid for admission once).
    if (!meta.recovered && queued_ >= options_.queue_capacity) {
      Job* victim = nullptr;
      for (const std::shared_ptr<Job>& queued_job : run_queue_) {
        if (queued_job->record.state != JobState::kQueued) continue;
        if (queued_job->qos_class <= meta.qos_class) continue;
        if (victim == nullptr || queued_job->qos_class > victim->qos_class ||
            (queued_job->qos_class == victim->qos_class &&
             queued_job->vfinish > victim->vfinish)) {
          victim = queued_job.get();
        }
      }
      if (victim != nullptr) {
        victim->record.state = JobState::kCancelled;
        victim->record.error = "preempted by higher-class admission";
        --queued_;
        preempted_total_->Increment();
        FinalizeLocked(victim);
      } else {
        count_admission_reject("queue_full");
        reject_writer.Emit(EventKind::kAdmissionReject, -1, "",
                           "ResourceExhausted",
                           static_cast<double>(queued_), workflow_name);
        return Status::ResourceExhausted(
            "admission queue full (" +
            std::to_string(options_.queue_capacity) + " queued jobs)");
      }
    }
    std::string id = meta.id_override;
    if (id.empty()) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "job-%06llu",
                    static_cast<unsigned long long>(next_job_number_++));
      id = buf;
    }
    // A failover resubmission can route a job id back to a replica that
    // still holds the crashed incarnation's record. Tombstone the old
    // record first so its queue entry is inert and the accounting stays
    // balanced; the map slot then belongs to the new incarnation.
    auto existing = jobs_.find(id);
    const bool replacing = existing != jobs_.end();
    if (replacing && !IsTerminal(existing->second->record.state)) {
      AbandonLocked(existing->second.get());
    }
    job = std::make_shared<Job>();
    job->graph = graph;
    job->exec = exec;
    job->record.id = id;
    job->record.workflow = workflow_name;
    job->record.policy = policy;
    job->record.state = JobState::kQueued;
    job->record.slo_class = slo_class;
    job->record.tenant = meta.tenant;
    job->record.qos_class = meta.qos_class;
    job->record.idempotency_key = meta.idempotency_key;
    job->record.replica = meta.replica;
    job->record.incarnation = meta.incarnation;
    job->record.resumed = meta.recovered;
    job->record.resumed_steps =
        static_cast<int>(exec.resume_materialized.size());
    job->record.submitted_at = NowSeconds();
    job->record.trace = std::make_shared<TraceContext>(job->record.id);
    job->qos_class = meta.qos_class;
    job->weight = meta.weight > 0.0 ? meta.weight : 1.0;
    job->journal = meta.journal;
    job->incarnation = meta.incarnation;
    // Weighted-fair virtual finish time: a tenant's backlog spaces out at
    // 1/weight virtual seconds per job, so under contention dispatch
    // interleaves tenants proportionally to weight instead of FIFO.
    double& tenant_vtime = tenant_vtime_[meta.tenant];
    job->vfinish = std::max(vclock_, tenant_vtime) + 1.0 / job->weight;
    tenant_vtime = job->vfinish;
    job->queue_span =
        job->record.trace->BeginSpan("job.queue_wait", "job");
    jobs_[job->record.id] = job;
    if (!replacing) submission_order_.push_back(job->record.id);
    ++queued_;
    queued_gauge_->Set(static_cast<double>(queued_));
    submitted_total_->Increment();
    if (job->journal != nullptr && !meta.recovered) {
      job->journal->Open(job->record.id, meta.replica, meta.tenant,
                         meta.idempotency_key, workflow_name, slo_class);
    }
    JournalWriter(&server_->journal(), job->record.id)
        .Emit(EventKind::kAdmissionAccept, -1, "", slo_class,
              static_cast<double>(queued_), workflow_name);
    run_queue_.push_back(job);
    DispatchLocked();
  }
  return job->record.id;
}

void JobService::DispatchLocked() {
  while (dispatched_ < static_cast<size_t>(options_.workers) &&
         !run_queue_.empty()) {
    // Sweep entries cancelled or preempted while queued.
    for (auto it = run_queue_.begin(); it != run_queue_.end();) {
      it = IsTerminal((*it)->record.state) ? run_queue_.erase(it)
                                           : std::next(it);
    }
    if (run_queue_.empty()) break;
    // Weighted-fair pick: lowest QoS class first, earliest virtual finish
    // time within the class (FIFO order is the single-tenant special case
    // because vfinish is assigned monotonically per tenant).
    auto best = run_queue_.begin();
    for (auto it = std::next(run_queue_.begin()); it != run_queue_.end();
         ++it) {
      if ((*it)->qos_class < (*best)->qos_class ||
          ((*it)->qos_class == (*best)->qos_class &&
           (*it)->vfinish < (*best)->vfinish)) {
        best = it;
      }
    }
    std::shared_ptr<Job> job = *best;
    run_queue_.erase(best);
    vclock_ = std::max(vclock_, job->vfinish);
    ++dispatched_;
    if (!sched_->Submit([this, job] { RunJob(job); }, "job.run")) {
      // The scheduler has shut down under us (it journals the
      // task_rejected) — terminate the record instead of stranding it.
      --dispatched_;
      if (job->record.state == JobState::kQueued) {
        job->record.state = JobState::kCancelled;
        --queued_;
        queued_gauge_->Set(static_cast<double>(queued_));
        FinalizeLocked(job.get());
      }
    }
  }
}

/// Events attached to a failed job record — enough to replay admission,
/// planning, every retry round and the terminal failure.
constexpr size_t kFailureSnapshotEvents = 64;

void JobService::FinalizeLocked(Job* job) {
  job->record.finished_at = NowSeconds();
  switch (job->record.state) {
    case JobState::kSucceeded: succeeded_total_->Increment(); break;
    case JobState::kFailed: failed_total_->Increment(); break;
    case JobState::kCancelled: cancelled_total_->Increment(); break;
    default: break;
  }
  if (job->record.state == JobState::kFailed) {
    // Journal the terminal event first so the snapshot includes it, then
    // pin the job's event stream to the record — the ring buffer will
    // eventually overwrite these events, but the postmortem keeps them.
    EventJournal& journal = server_->journal();
    JournalWriter(&journal, job->record.id)
        .Emit(EventKind::kJobFailed, -1, "", "", 0.0, job->record.error);
    EventJournal::Filter filter;
    filter.job = job->record.id;
    filter.limit = kFailureSnapshotEvents;
    job->record.event_snapshot = journal.Query(filter);
  }
  // A job cancelled before pickup never measured its queue wait — the
  // whole lifetime *was* the queue wait.
  if (job->record.queue_seconds == 0.0 && job->record.started_at == 0.0) {
    job->record.queue_seconds =
        job->record.finished_at - job->record.submitted_at;
    job->record.trace->EndSpan(
        job->queue_span, {{"outcome", JobStateName(job->record.state)}});
  }
  // Write-ahead terminal record. Fenced (a no-op) when the control plane
  // already reassigned this job to a newer incarnation — that is exactly
  // what makes the journal's terminal record exactly-once.
  if (job->journal != nullptr) {
    JobJournalRecord rec;
    rec.job = job->record.id;
    rec.incarnation = job->incarnation;
    rec.phase = JournalPhase::kTerminal;
    rec.replica = job->record.replica;
    rec.tenant = job->record.tenant;
    rec.state = JobStateName(job->record.state);
    rec.detail = job->record.error;
    job->journal->Append(std::move(rec));
  }
  const double duration =
      job->record.finished_at - job->record.submitted_at;
  // EWMA job duration feeds BacklogSeconds (the Retry-After hint).
  ewma_seconds_ = ewma_seconds_ == 0.0 ? duration
                                       : 0.8 * ewma_seconds_ + 0.2 * duration;
  job_duration_seconds_->Observe(duration);
  idle_.notify_all();
}

void JobService::AbandonLocked(Job* job) {
  if (IsTerminal(job->record.state)) return;
  if (job->record.state == JobState::kQueued) {
    --queued_;
    queued_gauge_->Set(static_cast<double>(queued_));
  } else {
    --active_;
    active_gauge_->Set(static_cast<double>(active_));
  }
  job->record.state = JobState::kCancelled;
  job->record.error = "abandoned: replica crashed";
  FinalizeLocked(job);
}

double JobService::BacklogSeconds() const {
  MutexLock lock(mu_);
  if (queued_ == 0) return 0.0;
  const double per_job = ewma_seconds_ > 0.0 ? ewma_seconds_ : 1.0;
  return static_cast<double>(queued_) * per_job /
         static_cast<double>(std::max(1, options_.workers));
}

void JobService::RunJob(const std::shared_ptr<Job>& job) {
  ExecuteJob(job);
  MutexLock lock(mu_);
  --dispatched_;
  DispatchLocked();
  if (dispatched_ == 0) idle_.notify_all();  // Shutdown waits on this
}

void JobService::ExecuteJob(const std::shared_ptr<Job>& job) {
  // Mid-plan kill point: the probe fires with no lock held, and a kill it
  // takes is observed by the crashed_ check right below.
  if (phase_probe_) phase_probe_(job->record.id, 0, 'p');
  OptimizationPolicy policy;
  TraceContext* trace = job->record.trace.get();
  uint64_t plan_span = 0;
  {
    MutexLock lock(mu_);
    if (job->record.state != JobState::kQueued) return;  // cancelled earlier
    if (crashed_.load(std::memory_order_acquire)) {
      AbandonLocked(job.get());
      return;
    }
    if (job->cancel_requested || shutting_down_) {
      job->record.state = JobState::kCancelled;
      --queued_;
      queued_gauge_->Set(static_cast<double>(queued_));
      FinalizeLocked(job.get());
      return;
    }
    job->record.state = JobState::kPlanning;
    job->record.started_at = NowSeconds();
    job->record.queue_seconds =
        job->record.started_at - job->record.submitted_at;
    queue_wait_seconds_->Observe(job->record.queue_seconds);
    trace->EndSpan(job->queue_span, {{"outcome", "picked_up"}});
    plan_span = trace->BeginSpan("job.plan", "job");
    --queued_;
    ++active_;
    queued_gauge_->Set(static_cast<double>(queued_));
    active_gauge_->Set(static_cast<double>(active_));
    if (job->journal != nullptr) {
      JobJournalRecord rec;
      rec.job = job->record.id;
      rec.incarnation = job->incarnation;
      rec.phase = JournalPhase::kPlanning;
      rec.replica = job->record.replica;
      rec.tenant = job->record.tenant;
      job->journal->Append(std::move(rec));
    }
    policy = job->record.policy;
  }

  auto planned = server_->PlanWorkflowCached(job->graph, policy, trace);

  double exec_started_at = 0.0;
  {
    MutexLock lock(mu_);
    if (IsTerminal(job->record.state)) return;  // abandoned while planning
    job->record.plan_seconds = NowSeconds() - job->record.started_at;
    if (!planned.ok()) {
      trace->EndSpan(plan_span, {{"ok", "false"}});
      job->record.state = JobState::kFailed;
      job->record.error = planned.status().ToString();
      --active_;
      active_gauge_->Set(static_cast<double>(active_));
      FinalizeLocked(job.get());
      return;
    }
    const ExecutionPlan& plan = planned.value().plan;
    trace->EndSpan(plan_span,
                   {{"ok", "true"},
                    {"cache", planned.value().cache_hit ? "hit" : "miss"},
                    {"steps", std::to_string(plan.steps.size())}});
    job->record.plan_summary = plan.ToString();
    job->record.plan_steps = static_cast<int>(plan.steps.size());
    job->record.estimated_seconds = plan.estimated_seconds;
    job->record.estimated_cost = plan.estimated_cost;
    job->record.plan_cache_hit = planned.value().cache_hit;
    if (crashed_.load(std::memory_order_acquire)) {
      AbandonLocked(job.get());
      return;
    }
    // Cancellation window between planning and execution: once the
    // enforcer starts, the run is not preemptible.
    if (job->cancel_requested) {
      job->record.state = JobState::kCancelled;
      --active_;
      active_gauge_->Set(static_cast<double>(active_));
      FinalizeLocked(job.get());
      return;
    }
    job->record.state = JobState::kRunning;
    if (job->journal != nullptr) {
      JobJournalRecord rec;
      rec.job = job->record.id;
      rec.incarnation = job->incarnation;
      rec.phase = JournalPhase::kRunning;
      rec.replica = job->record.replica;
      rec.tenant = job->record.tenant;
      rec.detail = "steps=" + std::to_string(plan.steps.size()) +
                   " estimatedSeconds=" +
                   std::to_string(plan.estimated_seconds);
      job->journal->Append(std::move(rec));
    }
    exec_started_at = NowSeconds();
  }

  if (phase_probe_) phase_probe_(job->record.id, 0, 'r');

  // Chain the caller's step observer with the journal checkpoint: every
  // materialized output is appended (fenced once the job is reassigned)
  // and the step probe — the mid-run kill point — fires after the append,
  // so a kill taken there always finds the checkpoint already durable.
  IresServer::ExecutionOptions exec = job->exec;
  {
    const Enforcer::StepObserver caller = exec.step_observer;
    const std::string job_id = job->record.id;
    const std::string tenant = job->record.tenant;
    const int replica = job->record.replica;
    JobJournal* journal = job->journal;
    const uint64_t incarnation = job->incarnation;
    const std::shared_ptr<Job> jobref = job;
    exec.step_observer = [this, jobref, caller, job_id, tenant, replica,
                          journal, incarnation](int step_id,
                                                const DatasetInstance& out) {
      if (caller) caller(step_id, out);
      const int done =
          jobref->completed_steps.fetch_add(1, std::memory_order_relaxed) +
          1;
      if (journal != nullptr) {
        JobJournalRecord rec;
        rec.job = job_id;
        rec.incarnation = incarnation;
        rec.phase = JournalPhase::kStepCompleted;
        rec.replica = replica;
        rec.tenant = tenant;
        rec.step = step_id;
        rec.artifact = out;
        journal->Append(std::move(rec));
      }
      if (phase_probe_) phase_probe_(job_id, done, 's');
    };
  }

  IresServer::WorkflowRunResult result = server_->ExecutePlanned(
      job->graph, policy, planned.value(), trace, exec);

  {
    MutexLock lock(mu_);
    if (IsTerminal(job->record.state)) return;  // abandoned mid-run
    job->record.outcome = std::move(result.recovery);
    job->record.chaos_injected = result.chaos_injected;
    job->record.exec_wall_seconds = NowSeconds() - exec_started_at;
    if (crashed_.load(std::memory_order_acquire)) {
      // The run finished on a killed replica; the reassigned incarnation
      // owns the job now, so this record is a tombstone and its terminal
      // journal append is fenced away inside AbandonLocked's finalize.
      AbandonLocked(job.get());
      return;
    }
    --active_;
    active_gauge_->Set(static_cast<double>(active_));
    if (job->record.outcome.status.ok()) {
      job->record.state = JobState::kSucceeded;
    } else {
      job->record.state = JobState::kFailed;
      job->record.error = job->record.outcome.status.ToString();
    }
    FinalizeLocked(job.get());
  }
}

Result<JobRecord> JobService::Get(const std::string& id) const {
  MutexLock lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::NotFound("job: " + id);
  return it->second->record;
}

std::vector<JobRecord> JobService::List() const {
  MutexLock lock(mu_);
  std::vector<JobRecord> out;
  out.reserve(submission_order_.size());
  for (const std::string& id : submission_order_) {
    out.push_back(jobs_.at(id)->record);
  }
  return out;
}

Status JobService::Cancel(const std::string& id) {
  MutexLock lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::NotFound("job: " + id);
  Job& job = *it->second;
  if (IsTerminal(job.record.state)) {
    return Status::FailedPrecondition(
        "job " + id + " already " + JobStateName(job.record.state));
  }
  if (job.record.state == JobState::kQueued) {
    job.record.state = JobState::kCancelled;
    --queued_;
    queued_gauge_->Set(static_cast<double>(queued_));
    FinalizeLocked(&job);
    return Status::OK();
  }
  // PLANNING / RUNNING: honoured at the next preemption point.
  job.cancel_requested = true;
  return Status::OK();
}

JobService::Stats JobService::stats() const {
  MutexLock lock(mu_);
  Stats s;
  s.submitted = submitted_total_->Value();
  s.rejected = rejected_total_->Value();
  s.succeeded = succeeded_total_->Value();
  s.failed = failed_total_->Value();
  s.cancelled = cancelled_total_->Value();
  s.queue_depth = queued_;
  s.running = active_;
  s.workers = options_.workers;
  return s;
}

bool JobService::WaitForIdle(double timeout_seconds) const {
  MutexLock lock(mu_);
  // condition_variable_any waits on the Mutex itself, so the rank registry
  // tracks the release/reacquire cycles inside the wait.
  // Analysis waiver: the predicate runs with mu_ held (the cv reacquires
  // it before every evaluation), but the lambda is a separate function the
  // analysis cannot see that from.
  return idle_.wait_for(
      mu_, std::chrono::duration<double>(timeout_seconds),
      [this]() NO_THREAD_SAFETY_ANALYSIS {
        return queued_ == 0 && active_ == 0;
      });
}

void JobService::Shutdown() {
  MutexLock lock(mu_);
  shutting_down_ = true;
  // Undispatched jobs never reach the scheduler again.
  run_queue_.clear();
  // Dispatched jobs drain on the (still running) shared scheduler: ones
  // still QUEUED observe shutting_down_ and self-cancel, PLANNING/RUNNING
  // ones finish. The scheduler itself is the server's — never stopped here.
  // Analysis waiver: predicate evaluated with mu_ held by the cv (see
  // WaitForIdle).
  idle_.wait(mu_, [this]() NO_THREAD_SAFETY_ANALYSIS {
    return dispatched_ == 0;
  });
  // Sweep whatever never ran to CANCELLED so every record still reaches a
  // terminal state.
  for (auto& [id, job] : jobs_) {
    if (job->record.state == JobState::kQueued) {
      job->record.state = JobState::kCancelled;
      --queued_;
      FinalizeLocked(job.get());
    }
  }
  queued_gauge_->Set(static_cast<double>(queued_));
  idle_.notify_all();
}

}  // namespace ires
