#ifndef IRES_ANALYSIS_WORKFLOW_ANALYZER_H_
#define IRES_ANALYSIS_WORKFLOW_ANALYZER_H_

#include <vector>

#include "analysis/diagnostics.h"
#include "engines/engine_registry.h"
#include "operators/operator_library.h"
#include "planner/optimization_policy.h"
#include "planner/planner_context.h"
#include "workflow/workflow_graph.h"

namespace ires {

/// Multi-pass linter for abstract workflow graphs — the admission gate that
/// runs before any planning. Passes, in order (each collects every finding
/// instead of stopping at the first):
///
///   1. structure     WF001-WF006: target set, operator arity, dangling
///                    input ports, multi-producer datasets, cycles.
///   2. reachability  WF007 (orphan, error) / WF008 (connected but cannot
///                    reach the target, warning), via backward BFS from the
///                    target.
///   3. policy        PO001: non-finite or negative weights, weighted
///                    objective with both weights zero.
///   4. library       Only when Options.library is set. WF009/WF010 source
///                    datasets missing or abstract, WF011 abstract operators
///                    with no materialized implementation, WF012 candidates
///                    exist but every engine is OFF, WF014 declared
///                    Constraints.Input.number vs. connected ports, WF013
///                    source-dataset/port metadata incompatibilities (reuses
///                    metadata/tree_match; move-bridgeable store/format
///                    differences are not flagged), WF015 every available
///                    candidate asks for more than the cluster owns.
///
/// Structure and reachability need only the graph, which is what the
/// WorkflowGraph::Validate() wrapper uses; the deeper passes switch on
/// whichever collaborators the Options carry.
class WorkflowAnalyzer {
 public:
  struct Options {
    /// Library for source-dataset / resolution / port checks (optional).
    const OperatorLibrary* library = nullptr;
    /// Registry for engine-availability checks (optional).
    const EngineRegistry* engines = nullptr;
    /// Memoized resolver; when set, candidate resolution goes through its
    /// cache instead of re-matching against the library.
    const PlannerContext* context = nullptr;
    /// Cluster capacity for WF015; 0 disables the capacity pass.
    int cluster_total_cores = 0;
    double cluster_total_memory_gb = 0.0;
  };

  WorkflowAnalyzer() = default;
  explicit WorkflowAnalyzer(Options options) : options_(options) {}

  /// Runs all applicable passes; diagnostics arrive in pass order.
  std::vector<Diagnostic> Analyze(const WorkflowGraph& graph,
                                  const OptimizationPolicy* policy = nullptr) const;

 private:
  void CheckStructure(const WorkflowGraph& graph,
                      std::vector<Diagnostic>* out) const;
  void CheckReachability(const WorkflowGraph& graph,
                         std::vector<Diagnostic>* out) const;
  void CheckPolicy(const OptimizationPolicy& policy,
                   std::vector<Diagnostic>* out) const;
  void CheckLibrary(const WorkflowGraph& graph,
                    std::vector<Diagnostic>* out) const;

  /// Candidates for the abstract node `name`, via the context cache when
  /// available, else a direct library snapshot (mirroring
  /// PlannerContext::Resolve's synthesized-abstract fallback).
  std::vector<ResolvedCandidate> ResolveCandidates(
      const std::string& name) const;

  Options options_;
};

}  // namespace ires

#endif  // IRES_ANALYSIS_WORKFLOW_ANALYZER_H_
