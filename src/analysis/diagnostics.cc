#include "analysis/diagnostics.h"

#include <string>

#include "common/strings.h"

namespace ires {

const char* DiagSeverityName(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kError: return "error";
    case DiagSeverity::kWarning: return "warning";
    case DiagSeverity::kInfo: return "info";
  }
  return "?";
}

std::string DiagLocation::ToString() const {
  std::string out;
  if (!node.empty()) {
    out += "node '" + node + "'";
    if (port >= 0) out += " port " + std::to_string(port);
  } else if (step >= 0) {
    out += "step " + std::to_string(step);
  }
  if (!path.empty()) {
    if (!out.empty()) out += " ";
    out += "(path " + path + ")";
  }
  return out;
}

std::string Diagnostic::ToString() const {
  std::string out = std::string(DiagSeverityName(severity)) + " " + code;
  const std::string where = location.ToString();
  if (!where.empty()) out += " at " + where;
  out += ": " + message;
  if (!fix_hint.empty()) out += " [fix: " + fix_hint + "]";
  return out;
}

std::string Diagnostic::ToJson() const {
  std::string out = "{\"code\":\"" + JsonEscape(code) + "\",\"severity\":\"" +
                    DiagSeverityName(severity) + "\",\"location\":{";
  bool first = true;
  auto field = [&](const char* key, const std::string& value) {
    if (!first) out += ",";
    first = false;
    out += std::string("\"") + key + "\":\"" + JsonEscape(value) + "\"";
  };
  if (!location.node.empty()) field("node", location.node);
  if (location.port >= 0) {
    if (!first) out += ",";
    first = false;
    out += "\"port\":" + std::to_string(location.port);
  }
  if (!location.path.empty()) field("path", location.path);
  if (location.step >= 0) {
    if (!first) out += ",";
    first = false;
    out += "\"step\":" + std::to_string(location.step);
  }
  out += "},\"message\":\"" + JsonEscape(message) + "\"";
  if (!fix_hint.empty()) out += ",\"fixHint\":\"" + JsonEscape(fix_hint) + "\"";
  out += "}";
  return out;
}

bool HasErrors(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == DiagSeverity::kError) return true;
  }
  return false;
}

size_t CountSeverity(const std::vector<Diagnostic>& diagnostics,
                     DiagSeverity severity) {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

std::string RenderText(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.ToString();
    out += "\n";
  }
  return out;
}

std::string RenderJson(const std::vector<Diagnostic>& diagnostics) {
  std::string out = "[";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    if (i > 0) out += ",";
    out += diagnostics[i].ToJson();
  }
  out += "]";
  return out;
}

Status DiagnosticsToStatus(const std::vector<Diagnostic>& diagnostics) {
  std::string message;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity != DiagSeverity::kError) continue;
    if (!message.empty()) message += "; ";
    message += d.ToString();
  }
  if (message.empty()) return Status::OK();
  return Status::FailedPrecondition(message);
}

void CountValidationRejects(MetricsRegistry* metrics,
                            const std::vector<Diagnostic>& diagnostics,
                            const std::string& tenant) {
  if (metrics == nullptr) return;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity != DiagSeverity::kError) continue;
    LabelSet labels = {{"code", d.code}};
    if (!tenant.empty()) labels.emplace_back("tenant", tenant);
    metrics
        ->GetCounter("ires_validation_rejects_total",
                     "Workflow submissions rejected by static analysis, "
                     "by diagnostic code.",
                     labels)
        ->Increment();
  }
}

}  // namespace ires
