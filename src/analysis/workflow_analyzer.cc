#include "analysis/workflow_analyzer.h"

#include <cmath>
#include <deque>
#include <string>
#include <vector>

#include "metadata/tree_match.h"

namespace ires {
namespace {

using Node = WorkflowGraph::Node;
using NodeKind = WorkflowGraph::NodeKind;

void Emit(std::vector<Diagnostic>* out, const char* code,
          DiagSeverity severity, DiagLocation location, std::string message,
          std::string fix_hint = "") {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.location = std::move(location);
  d.message = std::move(message);
  d.fix_hint = std::move(fix_hint);
  out->push_back(std::move(d));
}

/// True when `node` touches no edge at all — a stray artefact of graph
/// assembly rather than a mis-wired one.
bool IsIsolated(const Node& node) {
  if (node.kind == NodeKind::kOperator) {
    return node.inputs.empty() && node.outputs.empty();
  }
  return node.inputs.empty() && node.outputs.empty();
}

/// Copies `spec` minus the store (Engine.FS) and format (type) constraints —
/// exactly the two attributes a planner-injected move/transform hop can
/// rewrite. Whatever still mismatches after this is a hard incompatibility.
MetadataTree::Node StripBridgeable(const MetadataTree::Node& spec) {
  MetadataTree::Node out = spec;
  out.children.erase("type");
  auto engine = out.children.find("Engine");
  if (engine != out.children.end()) {
    engine->second.children.erase("FS");
    if (engine->second.children.empty() && !engine->second.value) {
      out.children.erase(engine);
    }
  }
  return out;
}

}  // namespace

std::vector<Diagnostic> WorkflowAnalyzer::Analyze(
    const WorkflowGraph& graph, const OptimizationPolicy* policy) const {
  std::vector<Diagnostic> out;
  CheckStructure(graph, &out);
  CheckReachability(graph, &out);
  if (policy != nullptr) CheckPolicy(*policy, &out);
  if (options_.library != nullptr) CheckLibrary(graph, &out);
  return out;
}

void WorkflowAnalyzer::CheckStructure(const WorkflowGraph& graph,
                                      std::vector<Diagnostic>* out) const {
  if (graph.target() < 0) {
    Emit(out, diag::kNoTarget, DiagSeverity::kError, DiagLocation{},
         "no $target dataset",
         "end the graph file with a `<dataset>,$target` line");
  }

  for (size_t id = 0; id < graph.size(); ++id) {
    const Node& node = graph.node(static_cast<int>(id));
    if (node.kind == NodeKind::kOperator) {
      if (node.inputs.empty()) {
        Emit(out, diag::kOperatorNoInput, DiagSeverity::kError,
             DiagLocation::Node(node.name),
             "operator has no input datasets",
             "connect at least one dataset into the operator");
      }
      if (node.outputs.empty()) {
        Emit(out, diag::kOperatorNoOutput, DiagSeverity::kError,
             DiagLocation::Node(node.name),
             "operator produces no output datasets",
             "connect the operator to an output dataset");
      }
      for (size_t port = 0; port < node.inputs.size(); ++port) {
        if (node.inputs[port] < 0) {
          Emit(out, diag::kDanglingInputPort, DiagSeverity::kError,
               DiagLocation::Port(node.name, static_cast<int>(port)),
               "input port " + std::to_string(port) + " is unconnected",
               "connect a dataset to every declared input port");
        }
      }
    } else if (node.outputs.size() > 1) {
      std::string producers;
      for (int op : node.outputs) {
        if (!producers.empty()) producers += ", ";
        producers += graph.node(op).name;
      }
      Emit(out, diag::kMultipleProducers, DiagSeverity::kError,
           DiagLocation::Node(node.name),
           "dataset is produced by " + std::to_string(node.outputs.size()) +
               " operators (" + producers + ")",
           "give every dataset exactly one producing operator");
    }
  }

  // Kahn's algorithm over operator nodes (producer -> consumer edges through
  // the shared dataset); whatever never drains to indegree 0 sits on or
  // behind a cycle.
  std::vector<int> indegree(graph.size(), 0);
  std::vector<bool> is_op(graph.size(), false);
  for (size_t id = 0; id < graph.size(); ++id) {
    const Node& node = graph.node(static_cast<int>(id));
    if (node.kind != NodeKind::kOperator) continue;
    is_op[id] = true;
    for (int in : node.inputs) {
      if (in < 0) continue;
      indegree[id] += static_cast<int>(graph.node(in).outputs.size());
    }
  }
  std::deque<int> ready;
  size_t op_count = 0;
  for (size_t id = 0; id < graph.size(); ++id) {
    if (!is_op[id]) continue;
    ++op_count;
    if (indegree[id] == 0) ready.push_back(static_cast<int>(id));
  }
  size_t drained = 0;
  while (!ready.empty()) {
    const int id = ready.front();
    ready.pop_front();
    ++drained;
    for (int out_ds : graph.node(id).outputs) {
      if (out_ds < 0) continue;
      for (int consumer : graph.node(out_ds).inputs) {
        if (--indegree[consumer] == 0) ready.push_back(consumer);
      }
    }
  }
  if (drained < op_count) {
    std::string cycle_ops;
    std::string first;
    for (size_t id = 0; id < graph.size(); ++id) {
      if (!is_op[id] || indegree[id] == 0) continue;
      if (first.empty()) first = graph.node(static_cast<int>(id)).name;
      if (!cycle_ops.empty()) cycle_ops += ", ";
      cycle_ops += graph.node(static_cast<int>(id)).name;
    }
    Emit(out, diag::kCycle, DiagSeverity::kError, DiagLocation::Node(first),
         "workflow contains a cycle through operators {" + cycle_ops + "}",
         "break the dependency cycle; workflows must be DAGs");
  }
}

void WorkflowAnalyzer::CheckReachability(const WorkflowGraph& graph,
                                         std::vector<Diagnostic>* out) const {
  const int target = graph.target();
  if (target < 0 || static_cast<size_t>(target) >= graph.size()) return;

  // Backward BFS from the target: a dataset depends on its producer
  // operators, an operator on its input datasets.
  std::vector<bool> reached(graph.size(), false);
  std::deque<int> frontier{target};
  reached[target] = true;
  while (!frontier.empty()) {
    const Node& node = graph.node(frontier.front());
    frontier.pop_front();
    const std::vector<int>& upstream =
        node.kind == NodeKind::kOperator ? node.inputs : node.outputs;
    for (int up : upstream) {
      if (up < 0 || reached[up]) continue;
      reached[up] = true;
      frontier.push_back(up);
    }
  }

  for (size_t id = 0; id < graph.size(); ++id) {
    if (reached[id]) continue;
    const Node& node = graph.node(static_cast<int>(id));
    if (IsIsolated(node)) {
      Emit(out, diag::kOrphanNode, DiagSeverity::kError,
           DiagLocation::Node(node.name),
           "node is connected to nothing",
           "remove the node or wire it into the workflow");
    } else {
      Emit(out, diag::kUnreachableNode, DiagSeverity::kWarning,
           DiagLocation::Node(node.name),
           "node cannot reach the target dataset; it will never be planned "
           "or executed",
           "remove the dead branch or re-point the target");
    }
  }
}

void WorkflowAnalyzer::CheckPolicy(const OptimizationPolicy& policy,
                                   std::vector<Diagnostic>* out) const {
  if (policy.objective != OptimizationPolicy::Objective::kWeighted) return;
  const double tw = policy.time_weight;
  const double cw = policy.cost_weight;
  if (!std::isfinite(tw) || !std::isfinite(cw) || tw < 0.0 || cw < 0.0) {
    Emit(out, diag::kBadPolicyWeights, DiagSeverity::kError, DiagLocation{},
         "weighted policy has non-finite or negative weights (time=" +
             std::to_string(tw) + ", cost=" + std::to_string(cw) + ")",
         "use finite weights >= 0");
  } else if (tw == 0.0 && cw == 0.0) {
    Emit(out, diag::kBadPolicyWeights, DiagSeverity::kError, DiagLocation{},
         "weighted policy has both weights zero; every plan scores 0 and the "
         "choice is arbitrary",
         "set at least one of time_weight / cost_weight > 0");
  }
}

std::vector<ResolvedCandidate> WorkflowAnalyzer::ResolveCandidates(
    const std::string& name) const {
  if (options_.context != nullptr) {
    return options_.context->Resolve(name).candidates();
  }
  // Mirror PlannerContext::Resolve without the cache: the library's abstract
  // of that name, or a synthesized one keyed on the node name as algorithm.
  const AbstractOperator* abstract = options_.library->FindAbstractByName(name);
  AbstractOperator synthesized;
  if (abstract == nullptr) {
    MetadataTree meta;
    meta.Set("Constraints.OpSpecification.Algorithm.name", name);
    synthesized = AbstractOperator(name, std::move(meta));
    abstract = &synthesized;
  }
  OperatorLibrary::MatchSnapshot match =
      options_.library->FindMaterializedSnapshot(*abstract);
  std::vector<ResolvedCandidate> candidates;
  candidates.reserve(match.operators.size());
  for (MaterializedOperator& op : match.operators) {
    ResolvedCandidate candidate;
    candidate.engine_name = op.engine();
    candidate.algorithm = op.algorithm();
    if (options_.engines != nullptr) {
      candidate.engine = options_.engines->Find(candidate.engine_name);
      candidate.engine_available =
          candidate.engine != nullptr && candidate.engine->available();
    } else {
      // No registry to consult: treat every binding as available so the
      // resolution pass still works for library-only linting.
      candidate.engine_available = true;
    }
    candidate.op = std::move(op);
    candidates.push_back(std::move(candidate));
  }
  return candidates;
}

void WorkflowAnalyzer::CheckLibrary(const WorkflowGraph& graph,
                                    std::vector<Diagnostic>* out) const {
  const OperatorLibrary& library = *options_.library;

  for (size_t id = 0; id < graph.size(); ++id) {
    const Node& node = graph.node(static_cast<int>(id));

    if (node.kind == NodeKind::kDataset) {
      // Source datasets (no producer, at least one consumer) must exist in
      // the library and be materialized — they are read from storage.
      if (!node.outputs.empty() || node.inputs.empty()) continue;
      const Dataset* ds = library.FindDatasetByName(node.name);
      if (ds == nullptr) {
        Emit(out, diag::kUnknownSourceDataset, DiagSeverity::kError,
             DiagLocation::Node(node.name),
             "source dataset is not registered in the operator library",
             "register it via POST /apiv1/datasets/" + node.name);
      } else if (!ds->IsMaterialized()) {
        Emit(out, diag::kAbstractSourceDataset, DiagSeverity::kError,
             DiagLocation::Node(node.name),
             "source dataset has no Execution.path (it exists nowhere "
             "concrete)",
             "add Execution.path to the dataset description");
      }
      continue;
    }

    // ---- Operator node: resolution / engines / arity / ports / capacity.
    const std::vector<ResolvedCandidate> candidates =
        ResolveCandidates(node.name);
    if (candidates.empty()) {
      Emit(out, diag::kUnresolvableOperator, DiagSeverity::kError,
           DiagLocation::Node(node.name),
           "no materialized operator implements this abstract operator",
           "register an implementation via POST /apiv1/operators/<name>");
      continue;
    }

    std::vector<const ResolvedCandidate*> available;
    for (const ResolvedCandidate& cand : candidates) {
      if (cand.engine_available) available.push_back(&cand);
    }
    if (available.empty()) {
      std::string engines;
      for (const ResolvedCandidate& cand : candidates) {
        if (!engines.empty()) engines += ", ";
        engines += cand.engine_name.empty() ? "?" : cand.engine_name;
      }
      Emit(out, diag::kNoAvailableEngine, DiagSeverity::kError,
           DiagLocation::Node(node.name),
           "implementations exist but every bound engine is unavailable (" +
               engines + ")",
           "turn an engine back on via PUT /apiv1/engines/<name>/availability");
      continue;
    }

    // Declared arity vs. connected ports — only when the abstract operator
    // states Constraints.Input.number explicitly (the implicit default of 1
    // would false-positive legitimate multi-input operators).
    const AbstractOperator* abstract = library.FindAbstractByName(node.name);
    if (abstract != nullptr &&
        abstract->meta().Get("Constraints.Input.number").has_value()) {
      const int declared = abstract->input_count();
      const int connected = static_cast<int>(node.inputs.size());
      if (declared != connected) {
        Emit(out, diag::kArityMismatch, DiagSeverity::kError,
             [&] {
               DiagLocation loc = DiagLocation::Node(node.name);
               loc.path = "Constraints.Input.number";
               return loc;
             }(),
             "operator declares " + std::to_string(declared) +
                 " input(s) but the workflow connects " +
                 std::to_string(connected),
             "connect exactly the declared number of inputs");
      }
    }

    // Port compatibility against *source* datasets whose metadata is known
    // now. Intermediate datasets depend on which upstream implementation the
    // planner picks, so they are checked post-planning by the PlanAnalyzer.
    for (size_t port = 0; port < node.inputs.size(); ++port) {
      const int in_id = node.inputs[port];
      if (in_id < 0) continue;  // already WF004
      const Node& in_node = graph.node(in_id);
      if (!in_node.outputs.empty()) continue;  // produced in-workflow
      const Dataset* ds = library.FindDatasetByName(in_node.name);
      if (ds == nullptr) continue;  // already WF009

      static const MetadataTree::Node kEmpty;
      const MetadataTree::Node* data_constraints =
          ds->meta().Find("Constraints");
      if (data_constraints == nullptr) data_constraints = &kEmpty;

      bool any_accepts = false;
      bool any_bridgeable = false;
      std::string mismatch_path;
      for (const ResolvedCandidate* cand : available) {
        const MetadataTree::Node* spec =
            cand->op.InputSpec(static_cast<int>(port));
        if (spec == nullptr) {
          any_accepts = true;
          break;
        }
        MatchResult result = MatchTreeNodes(*spec, *data_constraints);
        if (result.matched) {
          any_accepts = true;
          break;
        }
        // A store/format-only mismatch is fixable with one move/transform
        // hop; strip those attributes and re-match to find out.
        MatchResult relaxed =
            MatchTreeNodes(StripBridgeable(*spec), *data_constraints);
        if (relaxed.matched) {
          any_bridgeable = true;
        } else if (mismatch_path.empty()) {
          mismatch_path = relaxed.mismatch_path;
        }
      }
      if (!any_accepts && !any_bridgeable) {
        DiagLocation loc =
            DiagLocation::Port(node.name, static_cast<int>(port));
        loc.path = mismatch_path;
        Emit(out, diag::kPortMismatch, DiagSeverity::kError, std::move(loc),
             "dataset '" + in_node.name +
                 "' satisfies no implementation's input constraints, and the "
                 "difference is not bridgeable by a data move",
             "align the dataset metadata with the operator's Input" +
                 std::to_string(port) + " spec");
      }
    }

    // Capacity: every runnable implementation would ask for more than the
    // cluster owns, so planning is guaranteed to come up empty.
    if (options_.cluster_total_cores > 0) {
      bool any_fits = false;
      const ResolvedCandidate* worst = available.front();
      for (const ResolvedCandidate* cand : available) {
        if (cand->engine == nullptr) {
          any_fits = true;  // unknown engine: capacity is checked elsewhere
          break;
        }
        const Resources& ask = cand->engine->default_resources();
        if (ask.total_cores() <= options_.cluster_total_cores &&
            ask.total_memory_gb() <= options_.cluster_total_memory_gb) {
          any_fits = true;
          break;
        }
        worst = cand;
      }
      if (!any_fits) {
        Emit(out, diag::kOverCapacity, DiagSeverity::kError,
             DiagLocation::Node(node.name),
             "every available implementation needs more than the cluster "
             "owns (e.g. engine " +
                 worst->engine_name + " asks " +
                 worst->engine->default_resources().ToString() +
                 " against " +
                 std::to_string(options_.cluster_total_cores) + " cores / " +
                 std::to_string(options_.cluster_total_memory_gb) + " GB)",
             "grow the cluster or register a smaller implementation");
      }
    }
  }
}

}  // namespace ires
