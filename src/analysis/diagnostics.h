#ifndef IRES_ANALYSIS_DIAGNOSTICS_H_
#define IRES_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/metrics_registry.h"

namespace ires {

/// How bad a finding is. Admission (JobService::Submit, the REST execute
/// routes) rejects on kError only; warnings and notes ride along in the
/// diagnostics payload for the user to act on.
enum class DiagSeverity { kError, kWarning, kInfo };

const char* DiagSeverityName(DiagSeverity severity);

/// Stable diagnostic codes (see DESIGN.md "Static analysis" for the full
/// table). WFxxx = workflow-graph lint, POxxx = optimization-policy lint,
/// SQxxx = SQL front-end rejection, PLxxx = execution-plan verification.
/// Codes are part of the API surface:
/// clients and tests match on them, so existing codes never change meaning.
namespace diag {
// -- WorkflowAnalyzer: structure pass.
inline constexpr char kNoTarget[] = "WF001";
inline constexpr char kOperatorNoInput[] = "WF002";
inline constexpr char kOperatorNoOutput[] = "WF003";
inline constexpr char kDanglingInputPort[] = "WF004";
inline constexpr char kMultipleProducers[] = "WF005";
inline constexpr char kCycle[] = "WF006";
// -- WorkflowAnalyzer: reachability pass.
inline constexpr char kOrphanNode[] = "WF007";
inline constexpr char kUnreachableNode[] = "WF008";
// -- WorkflowAnalyzer: library passes (sources, resolution, ports,
//    capacity).
inline constexpr char kUnknownSourceDataset[] = "WF009";
inline constexpr char kAbstractSourceDataset[] = "WF010";
inline constexpr char kUnresolvableOperator[] = "WF011";
inline constexpr char kNoAvailableEngine[] = "WF012";
inline constexpr char kPortMismatch[] = "WF013";
inline constexpr char kArityMismatch[] = "WF014";
inline constexpr char kOverCapacity[] = "WF015";
// -- Policy sanity.
inline constexpr char kBadPolicyWeights[] = "PO001";
// -- SqlService: parse / resolve / optimize failures on POST /apiv1/sql.
inline constexpr char kSqlParseError[] = "SQ001";
inline constexpr char kSqlUnknownName[] = "SQ002";
inline constexpr char kSqlUnsupportedQuery[] = "SQ003";
inline constexpr char kSqlNoFeasiblePlan[] = "SQ004";
// -- PlanAnalyzer.
inline constexpr char kStepIdMismatch[] = "PL001";
inline constexpr char kBadDependency[] = "PL002";
inline constexpr char kUnknownEngine[] = "PL003";
inline constexpr char kEngineUnavailable[] = "PL004";
inline constexpr char kNoCostModel[] = "PL005";
inline constexpr char kEdgeIncompatible[] = "PL006";
inline constexpr char kStepOverCapacity[] = "PL007";
inline constexpr char kBadEstimate[] = "PL008";
inline constexpr char kMalformedMove[] = "PL009";
inline constexpr char kUnknownPlanSource[] = "PL010";
}  // namespace diag

/// Where a diagnostic points. Every field is optional; analyzers fill the
/// ones that apply (a workflow lint names a node and maybe a port, a
/// metadata mismatch adds the failing tree path, a plan finding names a
/// step).
struct DiagLocation {
  std::string node;  // workflow node (dataset or operator) name
  int port = -1;     // input-port index on `node`
  std::string path;  // metadata-tree path of the failed constraint
  int step = -1;     // execution-plan step id

  bool empty() const {
    return node.empty() && port < 0 && path.empty() && step < 0;
  }
  /// "node 'x' port 2 (path Engine.FS)", "step 5", or "" when unset.
  std::string ToString() const;

  static DiagLocation Node(std::string name) {
    DiagLocation loc;
    loc.node = std::move(name);
    return loc;
  }
  static DiagLocation Port(std::string name, int port) {
    DiagLocation loc;
    loc.node = std::move(name);
    loc.port = port;
    return loc;
  }
  static DiagLocation Step(int step) {
    DiagLocation loc;
    loc.step = step;
    return loc;
  }
};

/// One structured finding of a workflow or plan analyzer.
struct Diagnostic {
  std::string code;  // stable id from ires::diag
  DiagSeverity severity = DiagSeverity::kError;
  DiagLocation location;
  std::string message;   // what is wrong
  std::string fix_hint;  // how to fix it (may be empty)

  /// One human line: "error WF006 at node 'op': ... [fix: ...]".
  std::string ToString() const;
  /// {"code":...,"severity":...,"location":{...},"message":...,"fixHint":...}
  std::string ToJson() const;
};

bool HasErrors(const std::vector<Diagnostic>& diagnostics);
size_t CountSeverity(const std::vector<Diagnostic>& diagnostics,
                     DiagSeverity severity);

/// One diagnostic per line, errors first severity order preserved otherwise.
std::string RenderText(const std::vector<Diagnostic>& diagnostics);

/// JSON array of Diagnostic::ToJson objects.
std::string RenderJson(const std::vector<Diagnostic>& diagnostics);

/// OK when no error-severity diagnostic is present; otherwise a
/// FailedPrecondition whose message is the semicolon-joined error lines —
/// the bridge into the Status-based call sites (WorkflowGraph::Validate,
/// JobService::Submit) and the REST 422 mapping.
Status DiagnosticsToStatus(const std::vector<Diagnostic>& diagnostics);

/// Bumps `ires_validation_rejects_total{code=...}` once per error-severity
/// diagnostic. Call at the rejection site (not from dry-run linting).
/// A non-empty `tenant` adds a tenant label so multi-tenant deployments can
/// attribute rejects; empty keeps the legacy single-label series.
void CountValidationRejects(MetricsRegistry* metrics,
                            const std::vector<Diagnostic>& diagnostics,
                            const std::string& tenant = std::string());

}  // namespace ires

#endif  // IRES_ANALYSIS_DIAGNOSTICS_H_
