#include "analysis/plan_analyzer.h"

#include <cmath>
#include <string>
#include <vector>

#include "planner/planner_common.h"

namespace ires {
namespace {

DiagLocation StepLocation(const PlanStep& step) {
  DiagLocation loc;
  loc.step = step.id;
  loc.node = step.name;
  return loc;
}

void Emit(std::vector<Diagnostic>* out, const char* code,
          DiagSeverity severity, DiagLocation location, std::string message,
          std::string fix_hint = "") {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.location = std::move(location);
  d.message = std::move(message);
  d.fix_hint = std::move(fix_hint);
  out->push_back(std::move(d));
}

/// Highest declared Constraints.Input<i> index of `op`, or -1 when the
/// operator declares no per-port input constraints.
int MaxInputSpecIndex(const MaterializedOperator& op) {
  int max_index = -1;
  const MetadataTree::Node* constraints = op.meta().Find("Constraints");
  if (constraints == nullptr) return max_index;
  for (const auto& [label, child] : constraints->children) {
    if (label.size() <= 5 || label.compare(0, 5, "Input") != 0) continue;
    bool digits = true;
    for (size_t i = 5; i < label.size(); ++i) {
      if (label[i] < '0' || label[i] > '9') {
        digits = false;
        break;
      }
    }
    if (digits) max_index = std::max(max_index, std::stoi(label.substr(5)));
  }
  return max_index;
}

}  // namespace

std::vector<Diagnostic> PlanAnalyzer::Analyze(const ExecutionPlan& plan) const {
  std::vector<Diagnostic> out;
  const int step_count = static_cast<int>(plan.steps.size());

  for (int i = 0; i < step_count; ++i) {
    const PlanStep& step = plan.steps[i];

    if (step.id != i) {
      Emit(&out, diag::kStepIdMismatch, DiagSeverity::kError,
           StepLocation(step),
           "step at index " + std::to_string(i) + " carries id " +
               std::to_string(step.id),
           "plan steps must be stored in id order with dense ids");
    }

    for (int dep : step.deps) {
      if (dep < 0 || dep >= step_count || dep >= i) {
        Emit(&out, diag::kBadDependency, DiagSeverity::kError,
             StepLocation(step),
             "dependency " + std::to_string(dep) +
                 " does not name an earlier step",
             "emit producers before their consumers");
      }
    }

    const SimulatedEngine* engine = nullptr;
    if (options_.engines != nullptr) {
      engine = options_.engines->Find(step.engine);
      if (engine == nullptr) {
        Emit(&out, diag::kUnknownEngine, DiagSeverity::kError,
             StepLocation(step),
             "engine '" + step.engine + "' is not registered",
             "plan against the deployed engine registry");
      } else if (!engine->available()) {
        Emit(&out, diag::kEngineUnavailable, DiagSeverity::kError,
             StepLocation(step),
             "engine '" + step.engine + "' is switched off",
             "re-plan, or turn the engine back on");
      }
    }

    if (step.kind == PlanStep::Kind::kMove) {
      if (step.outputs.size() != 1 ||
          (step.deps.empty() && step.source_datasets.empty())) {
        Emit(&out, diag::kMalformedMove, DiagSeverity::kError,
             StepLocation(step),
             "move step must consume exactly one upstream and produce "
             "exactly one instance",
             "");
      }
    } else if (engine != nullptr &&
               engine->FindProfile(step.algorithm) == nullptr) {
      Emit(&out, diag::kNoCostModel, DiagSeverity::kError, StepLocation(step),
           "engine '" + step.engine + "' has no cost profile for algorithm '" +
               step.algorithm + "'",
           "profile the algorithm or add a '*' fallback profile");
    }

    const auto is_intermediate = [this](const std::string& source) {
      return options_.materialized_intermediates != nullptr &&
             options_.materialized_intermediates->count(source) != 0;
    };

    if (options_.library != nullptr) {
      for (const std::string& source : step.source_datasets) {
        if (is_intermediate(source)) continue;
        if (options_.library->FindDatasetByName(source) == nullptr) {
          Emit(&out, diag::kUnknownPlanSource, DiagSeverity::kError,
               StepLocation(step),
               "source dataset '" + source + "' is not in the library",
               "register the dataset before executing the plan");
        }
      }
    }

    // Edge compatibility: every declared input requirement of the step's
    // operator must be satisfiable by something the step actually consumes
    // (a dependency's output or a library source dataset). The check is
    // ordering-tolerant — PlanStep does not record port assignments.
    if (step.kind == PlanStep::Kind::kOperator &&
        options_.library != nullptr) {
      const MaterializedOperator* op =
          options_.library->FindMaterializedByName(step.name);
      if (op != nullptr) {
        std::vector<DatasetInstance> inputs;
        for (int dep : step.deps) {
          if (dep < 0 || dep >= step_count) continue;
          for (const DatasetInstance& inst : plan.steps[dep].outputs) {
            inputs.push_back(inst);
          }
        }
        for (const std::string& source : step.source_datasets) {
          if (is_intermediate(source)) {
            inputs.push_back(options_.materialized_intermediates->at(source));
            continue;
          }
          const Dataset* ds = options_.library->FindDatasetByName(source);
          if (ds == nullptr) continue;  // already PL010
          DatasetInstance inst;
          inst.dataset_node = source;
          inst.store = ds->store();
          inst.format = ds->format();
          inputs.push_back(inst);
        }
        const int max_spec = MaxInputSpecIndex(*op);
        for (int port = 0; port <= max_spec; ++port) {
          const planner_internal::IoRequirement req =
              planner_internal::RequirementFromSpec(op->InputSpec(port));
          if (req.store.empty() && req.format.empty()) continue;
          bool satisfied = false;
          for (const DatasetInstance& inst : inputs) {
            if (planner_internal::InstanceSatisfies(inst, req)) {
              satisfied = true;
              break;
            }
          }
          if (!satisfied) {
            DiagLocation loc = StepLocation(step);
            loc.port = port;
            loc.path = "Constraints.Input" + std::to_string(port);
            Emit(&out, diag::kEdgeIncompatible, DiagSeverity::kError,
                 std::move(loc),
                 "no consumed instance satisfies the operator's Input" +
                     std::to_string(port) + " requirement (store='" +
                     req.store + "', format='" + req.format + "')",
                 "the planner should have injected a move/transform here");
          }
        }
      }
    }

    if (options_.cluster_total_cores > 0) {
      if (step.resources.total_cores() > options_.cluster_total_cores ||
          step.resources.total_memory_gb() >
              options_.cluster_total_memory_gb) {
        Emit(&out, diag::kStepOverCapacity, DiagSeverity::kError,
             StepLocation(step),
             "step asks " + step.resources.ToString() +
                 " but the cluster owns " +
                 std::to_string(options_.cluster_total_cores) + " cores / " +
                 std::to_string(options_.cluster_total_memory_gb) + " GB",
             "provision within the cluster's capacity");
      }
    }

    if (!std::isfinite(step.estimated_seconds) ||
        step.estimated_seconds < 0.0 || !std::isfinite(step.estimated_cost) ||
        step.estimated_cost < 0.0) {
      Emit(&out, diag::kBadEstimate, DiagSeverity::kWarning,
           StepLocation(step),
           "model estimates are not finite non-negative numbers (seconds=" +
               std::to_string(step.estimated_seconds) +
               ", cost=" + std::to_string(step.estimated_cost) + ")",
           "re-profile the (operator, engine) pair");
    }
  }

  return out;
}

}  // namespace ires
