#ifndef IRES_ANALYSIS_PLAN_ANALYZER_H_
#define IRES_ANALYSIS_PLAN_ANALYZER_H_

#include <map>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "engines/engine_registry.h"
#include "operators/operator_library.h"
#include "planner/execution_plan.h"

namespace ires {

/// Verifier for materialized execution plans — the post-planning
/// counterpart of WorkflowAnalyzer. The planners run it on their own output
/// in debug builds (a cheap structural proof that the DP produced a sane
/// DAG); tools/ireslint and tests run it explicitly. Checks:
///
///   PL001  step ids are dense and equal to their index
///   PL002  dependencies point at earlier, existing steps
///   PL003  the step's engine is registered           (needs Options.engines)
///   PL004  the step's engine is available            (needs Options.engines)
///   PL005  a cost profile covers (algorithm, engine) (operator steps only)
///   PL006  some upstream output / source dataset satisfies every declared
///          input requirement of the step's operator  (needs Options.library)
///   PL007  step resources fit the cluster            (needs capacity)
///   PL008  estimates are finite and non-negative     (warning)
///   PL009  move steps have exactly one output and one upstream
///   PL010  source datasets exist in the library      (needs Options.library)
class PlanAnalyzer {
 public:
  struct Options {
    const OperatorLibrary* library = nullptr;
    const EngineRegistry* engines = nullptr;
    /// Replanning short-circuits (the planners' Options
    /// .materialized_intermediates): plan sources that are legitimate
    /// without a library entry. Checked before the library by PL010/PL006.
    const std::map<std::string, DatasetInstance>* materialized_intermediates =
        nullptr;
    /// Cluster capacity for PL007; 0 disables the capacity check.
    int cluster_total_cores = 0;
    double cluster_total_memory_gb = 0.0;
  };

  PlanAnalyzer() = default;
  explicit PlanAnalyzer(Options options) : options_(options) {}

  std::vector<Diagnostic> Analyze(const ExecutionPlan& plan) const;

 private:
  Options options_;
};

}  // namespace ires

#endif  // IRES_ANALYSIS_PLAN_ANALYZER_H_
