#include "common/interner.h"

namespace ires {

int32_t StringInterner::Intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  const int32_t id = static_cast<int32_t>(names_.size());
  names_.emplace_back(s);
  index_.emplace(names_.back(), id);
  return id;
}

int32_t StringInterner::Find(std::string_view s) const {
  auto it = index_.find(s);
  return it == index_.end() ? -1 : it->second;
}

}  // namespace ires
