#ifndef IRES_COMMON_INTERNER_H_
#define IRES_COMMON_INTERNER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace ires {

/// Maps strings to dense int32 ids so hot loops compare/hash integers
/// instead of heap strings. Ids are assigned in first-intern order starting
/// at 0 and stay stable for the interner's lifetime; the empty string is a
/// valid internable value like any other.
///
/// Not synchronized: each planner invocation owns its interner (the DP
/// tables it serves are call-local too). Wrap in external locking if a
/// shared instance is ever needed.
class StringInterner {
 public:
  StringInterner() = default;

  /// Returns the id for `s`, assigning the next free id on first sight.
  int32_t Intern(std::string_view s);

  /// The id for `s`, or -1 when it was never interned (pure lookup).
  int32_t Find(std::string_view s) const;

  /// The string behind `id`; `id` must come from this interner.
  const std::string& Name(int32_t id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

 private:
  // deque keeps Name() references stable across Intern growth.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, int32_t> index_;  // views into names_
};

}  // namespace ires

#endif  // IRES_COMMON_INTERNER_H_
