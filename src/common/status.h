#ifndef IRES_COMMON_STATUS_H_
#define IRES_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace ires {

/// Error category for a failed operation. Mirrors the failure modes the IReS
/// platform distinguishes: user input problems, missing library entries,
/// engine/runtime failures and internal invariant violations.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kUnavailable,      // engine or service is down
  kResourceExhausted,// e.g. operator input exceeds engine memory
  kExecutionError,   // a container / operator run failed
  kInternal,
};

/// Returns a stable human-readable name for `code` ("OK", "NotFound", ...).
const char* StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style status object. IReS public APIs never throw; every
/// fallible call returns a Status or a Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Value-or-error holder. `ok()` must be checked before `value()`.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value keeps call sites terse:
  /// `return some_plan;`
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status:
  /// `return Status::NotFound(...)`.
  Result(Status status) : data_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  /// Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define IRES_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::ires::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates a Result<T> expression, propagating its Status on error and
/// otherwise binding the value to `lhs`.
#define IRES_ASSIGN_OR_RETURN(lhs, expr)        \
  auto IRES_CONCAT_(res_, __LINE__) = (expr);   \
  if (!IRES_CONCAT_(res_, __LINE__).ok())       \
    return IRES_CONCAT_(res_, __LINE__).status(); \
  lhs = std::move(IRES_CONCAT_(res_, __LINE__)).value()

#define IRES_CONCAT_INNER_(a, b) a##b
#define IRES_CONCAT_(a, b) IRES_CONCAT_INNER_(a, b)

}  // namespace ires

#endif  // IRES_COMMON_STATUS_H_
