#include "common/json.h"

#include <cctype>
#include <cstdlib>

namespace ires {

namespace {

constexpr int kMaxDepth = 64;

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->string_value() : fallback;
}

double JsonValue::GetNumber(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number_value() : fallback;
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->bool_value() : fallback;
}

/// Single-pass recursive-descent parser over the raw text. Errors carry the
/// byte offset so clients can locate the problem in their request body.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    IRES_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      }
      case 't':
      case 'f': return ParseKeyword(out);
      case 'n': return ParseKeyword(out);
      default: return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      IRES_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      IRES_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object_[key] = std::move(value);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      IRES_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return Error("dangling escape");
      const char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + i];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences — lossless for round-tripping).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return Error("unknown escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseKeyword(JsonValue* out) {
    auto match = [&](const char* word) {
      const size_t len = std::string(word).size();
      if (text_.compare(pos_, len, word) != 0) return false;
      pos_ += len;
      return true;
    };
    if (match("true")) {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = true;
      return Status::OK();
    }
    if (match("false")) {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = false;
      return Status::OK();
    }
    if (match("null")) {
      out->kind_ = JsonValue::Kind::kNull;
      return Status::OK();
    }
    return Error("invalid literal");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    // RFC 8259: no leading zeros ("01" is two tokens, not a number).
    if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])) != 0) {
      return Error("number has a leading zero");
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a JSON value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("malformed number '" + token + "'");
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = value;
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return JsonParser(text).Parse();
}

}  // namespace ires
