#include "common/rng.h"

#include <cmath>

namespace ires {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Next() % span);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is kept away from 0 to avoid log(0).
  double u1 = 1.0 - Uniform();
  double u2 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace ires
