#ifndef IRES_COMMON_LOGGING_H_
#define IRES_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace ires {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Leveled logger. Messages below the global threshold are dropped. The
/// threshold defaults to kWarning so that library internals stay quiet in
/// tests and benches; examples raise it to kInfo for narration.
///
/// Each emitted line is fully formatted as
///   `<ISO-8601 UTC timestamp> [<LEVEL>] [tid <thread id>] <message>`
/// and handed to the active sink under a mutex, so concurrent worker-pool
/// logs never interleave mid-line. The default sink writes to stderr;
/// SetSink lets tests capture output and deployments redirect it.
class Logger {
 public:
  /// Receives one fully formatted line (no trailing newline).
  using Sink = std::function<void(LogLevel, const std::string& line)>;

  static LogLevel threshold();
  static void set_threshold(LogLevel level);

  /// Installs `sink` as the output target; a null sink restores stderr.
  static void SetSink(Sink sink);

  static void Log(LogLevel level, const std::string& message);

  /// The formatted line Log would emit for `message` — exposed so tests
  /// can assert the format without scraping stderr.
  static std::string Format(LogLevel level, const std::string& message);
};

/// Stream-style helper: `IRES_LOG(kInfo) << "planned in " << ms << "ms";`
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Log(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

#define IRES_LOG(level) ::ires::LogMessage(::ires::LogLevel::level)

}  // namespace ires

#endif  // IRES_COMMON_LOGGING_H_
