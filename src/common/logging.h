#ifndef IRES_COMMON_LOGGING_H_
#define IRES_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace ires {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimal leveled logger. Messages below the global threshold are dropped.
/// The threshold defaults to kWarning so that library internals stay quiet in
/// tests and benches; examples raise it to kInfo for narration.
class Logger {
 public:
  static LogLevel threshold();
  static void set_threshold(LogLevel level);
  static void Log(LogLevel level, const std::string& message);
};

/// Stream-style helper: `IRES_LOG(kInfo) << "planned in " << ms << "ms";`
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Log(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

#define IRES_LOG(level) ::ires::LogMessage(::ires::LogLevel::level)

}  // namespace ires

#endif  // IRES_COMMON_LOGGING_H_
