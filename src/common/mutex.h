#ifndef IRES_COMMON_MUTEX_H_
#define IRES_COMMON_MUTEX_H_

#include <mutex>
#include <shared_mutex>
#include <string>

#include "common/mutex_ranks.h"
#include "common/thread_annotations.h"

namespace ires {

namespace lock_rank {

/// Runtime lock-order registry. Each thread keeps the ordered list of
/// ranked locks it currently holds; every acquisition of an `ires::Mutex`
/// or `ires::SharedMutex` must strictly increase the maximum held rank.
/// Violations (inversion, recursive acquire, shared->exclusive upgrade)
/// print both lock sets — the current thread's and the one recorded for
/// the blessed direction of the same edge — and abort.
///
/// Checking defaults to ON in debug builds (!NDEBUG) and OFF in release;
/// tests flip it explicitly so the death tests pass in either build type.
bool ChecksEnabled();
void SetChecksEnabled(bool enabled);

/// RAII enable/disable for tests (restores the previous setting).
class ScopedChecksForTest {
 public:
  explicit ScopedChecksForTest(bool enabled)
      : previous_(ChecksEnabled()) {
    SetChecksEnabled(enabled);
  }
  ~ScopedChecksForTest() { SetChecksEnabled(previous_); }
  ScopedChecksForTest(const ScopedChecksForTest&) = delete;
  ScopedChecksForTest& operator=(const ScopedChecksForTest&) = delete;

 private:
  bool previous_;
};

/// Validates an intended acquisition against the calling thread's held
/// set without recording it: aborts on inversion, recursive acquire, or
/// shared->exclusive upgrade, and is a no-op otherwise. The wrappers call
/// this *before* blocking on the underlying primitive, so a would-be
/// self-deadlock (relocking a mutex this thread already holds) dies with
/// a diagnostic instead of hanging forever in pthread_mutex_lock.
void CheckAcquire(const void* mu, LockRank rank, const char* name,
                  bool shared);

/// Validates like CheckAcquire, then records the hold in the thread's
/// ordered held-lock list and the edge-witness table. Called with the
/// underlying lock held (TryLock success) or about to be taken (blocking
/// Lock — recording before the block means a thread stuck waiting shows
/// the contended lock in DescribeHeld, which is what you want in a hang
/// dump). `shared` distinguishes reader holds so an upgrade on the same
/// instance is reported as such. OnRelease runs before the underlying
/// unlock.
void OnAcquire(const void* mu, LockRank rank, const char* name, bool shared);
void OnRelease(const void* mu);

/// Number of ranked locks the calling thread currently holds (0 when
/// checking is disabled — bookkeeping only runs while enabled).
int HeldCount();

/// Human-readable "name(rank), name(rank)" list of the calling thread's
/// held locks, outermost first. For tests and diagnostics.
std::string DescribeHeld();

}  // namespace lock_rank

/// Annotated, rank-checked replacement for std::mutex. All mutex-holding
/// classes in src/ use this (tools/lockcheck rejects the raw std
/// primitives outside src/common/). The lowercase lock()/unlock() aliases
/// satisfy BasicLockable so std::condition_variable_any can wait on it
/// while keeping the rank bookkeeping consistent across the
/// release/reacquire inside wait().
class CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank = LockRank::kLeaf, const char* name = "mutex")
      : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    // Check+record BEFORE blocking: a recursive acquire must abort with a
    // diagnostic, not deadlock inside the underlying pthread mutex.
    lock_rank::OnAcquire(this, rank_, name_, /*shared=*/false);
    mu_.lock();
  }
  bool TryLock() TRY_ACQUIRE(true) {
    // A successful try-acquire cannot deadlock, but it still goes through
    // the full ordering check: out-of-order try-locks mask ordering rot
    // that would bite the next blocking acquire of the same edge. The
    // check runs first (recursive try_lock is UB on std::mutex); the
    // record only lands if the lock is actually taken.
    lock_rank::CheckAcquire(this, rank_, name_, /*shared=*/false);
    if (!mu_.try_lock()) return false;
    lock_rank::OnAcquire(this, rank_, name_, /*shared=*/false);
    return true;
  }
  void Unlock() RELEASE() {
    lock_rank::OnRelease(this);
    mu_.unlock();
  }

  // BasicLockable aliases for std::condition_variable_any.
  void lock() ACQUIRE() { Lock(); }
  void unlock() RELEASE() { Unlock(); }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  LockRank rank_;
  const char* name_;
};

/// Annotated, rank-checked replacement for std::shared_mutex. Shared
/// (reader) holds participate in the same per-thread ordering; acquiring
/// the exclusive side while already holding the shared side of the same
/// instance is reported as an upgrade attempt and aborts.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank = LockRank::kLeaf,
                       const char* name = "shared_mutex")
      : rank_(rank), name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
    // Check+record before blocking: a shared->exclusive upgrade attempt
    // must abort with a diagnostic, not self-deadlock in lock().
    lock_rank::OnAcquire(this, rank_, name_, /*shared=*/false);
    mu_.lock();
  }
  void Unlock() RELEASE() {
    lock_rank::OnRelease(this);
    mu_.unlock();
  }
  void LockShared() ACQUIRE_SHARED() {
    lock_rank::OnAcquire(this, rank_, name_, /*shared=*/true);
    mu_.lock_shared();
  }
  void UnlockShared() RELEASE_SHARED() {
    lock_rank::OnRelease(this);
    mu_.unlock_shared();
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  LockRank rank_;
  const char* name_;
};

/// RAII exclusive lock on an ires::Mutex (std::lock_guard equivalent).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive (writer) lock on an ires::SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~WriterLock() RELEASE() { mu_.Unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock on an ires::SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() RELEASE() { mu_.UnlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace ires

#endif  // IRES_COMMON_MUTEX_H_
