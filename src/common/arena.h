#ifndef IRES_COMMON_ARENA_H_
#define IRES_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace ires {

/// Bump allocator for planner-scoped scratch: one Plan/PlanFrontier call
/// allocates thousands of small DP-table nodes (entries, input-choice
/// lists, bucket indices) that all die together when the call returns.
/// Serving them from a per-plan arena turns each allocation into a pointer
/// bump inside a geometrically growing block chain — no per-entry
/// malloc/free on the warm path, no fragmentation, one batched release.
///
/// Not thread-safe: an Arena belongs to exactly one planning call on one
/// thread (parallel phases must stage into plain containers and merge
/// serially — see ParetoPlanner).
class Arena {
 public:
  explicit Arena(size_t first_block_bytes = 16 * 1024)
      : next_block_bytes_(first_block_bytes < 256 ? 256 : first_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two). The
  /// storage lives until the arena is destroyed; there is no per-object
  /// free.
  void* Allocate(size_t bytes, size_t align) {
    if (bytes == 0) bytes = 1;
    uintptr_t cursor = reinterpret_cast<uintptr_t>(cursor_);
    uintptr_t aligned = (cursor + (align - 1)) & ~(uintptr_t(align) - 1);
    if (aligned + bytes > reinterpret_cast<uintptr_t>(limit_)) {
      NewBlock(bytes + align);
      cursor = reinterpret_cast<uintptr_t>(cursor_);
      aligned = (cursor + (align - 1)) & ~(uintptr_t(align) - 1);
    }
    cursor_ = reinterpret_cast<char*>(aligned + bytes);
    bytes_allocated_ += bytes;
    return reinterpret_cast<void*>(aligned);
  }

  /// Total bytes handed out (excludes alignment padding and block slack).
  size_t bytes_allocated() const { return bytes_allocated_; }
  size_t block_count() const { return blocks_.size(); }

 private:
  void NewBlock(size_t min_bytes) {
    size_t size = next_block_bytes_;
    while (size < min_bytes) size *= 2;
    next_block_bytes_ = size * 2;  // geometric growth caps block count
    blocks_.push_back(std::make_unique<char[]>(size));
    cursor_ = blocks_.back().get();
    limit_ = cursor_ + size;
  }

  std::vector<std::unique_ptr<char[]>> blocks_;
  char* cursor_ = nullptr;
  char* limit_ = nullptr;
  size_t next_block_bytes_;
  size_t bytes_allocated_ = 0;
};

/// std::allocator-compatible handle over an Arena, so standard containers
/// (the DP tables' vectors) draw from the bump arena. deallocate is a
/// no-op — freed space is reclaimed only when the arena dies, which is the
/// point: DP tables only ever grow during a plan.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, size_t) {}

  Arena* arena() const { return arena_; }

 private:
  Arena* arena_;
};

template <typename A, typename B>
bool operator==(const ArenaAllocator<A>& a, const ArenaAllocator<B>& b) {
  return a.arena() == b.arena();
}
template <typename A, typename B>
bool operator!=(const ArenaAllocator<A>& a, const ArenaAllocator<B>& b) {
  return !(a == b);
}

}  // namespace ires

#endif  // IRES_COMMON_ARENA_H_
