#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>

namespace ires {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitAndTrim(std::string_view text, char sep) {
  std::vector<std::string> out;
  for (const std::string& field : Split(text, sep)) {
    std::string trimmed = Trim(field);
    if (!trimmed.empty()) out.push_back(std::move(trimmed));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int ParseIntOr(const std::string& text, int fallback) {
  if (text.empty()) return fallback;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
      parsed < INT_MIN || parsed > INT_MAX) {
    return fallback;
  }
  return static_cast<int>(parsed);
}

std::string HumanBytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 5) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%s", bytes, kUnits[unit]);
  return buf;
}

std::string HumanSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  return buf;
}

}  // namespace ires
