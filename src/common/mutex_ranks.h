#ifndef IRES_COMMON_MUTEX_RANKS_H_
#define IRES_COMMON_MUTEX_RANKS_H_

namespace ires {

/// The global lock-acquisition order of the serving stack. Every
/// `ires::Mutex`/`ires::SharedMutex` is constructed with one of these
/// ranks, and the debug-mode lock-rank registry (common/mutex.h) enforces
/// that a thread only ever acquires a mutex of *strictly greater* rank
/// than everything it already holds. Any violation — rank inversion,
/// recursive acquisition, shared→exclusive upgrade — aborts immediately
/// with both lock sets, turning a potential production deadlock into a
/// deterministic test failure.
///
/// Reading the table: low rank = outer lock (taken first, near the request
/// boundary), high rank = inner lock (leaf infrastructure). The blessed
/// cross-subsystem chains, with the rationale for each edge, are documented
/// in DESIGN.md "Concurrency correctness"; the load-bearing ones are
///
///   JobService -> scheduler gate/inject    (DispatchLocked submits tasks
///                                           while holding the job table)
///   JobService -> EventJournal/Trace       (admission + failure snapshots
///                                           are journaled under mu_)
///   EngineRegistry -> EventJournal/Metrics (breaker transitions journal
///                                           and gauge under health_mu_)
///   ModelLibraryMap -> ModelLibraryPair    (SaveToDirectory iterates pairs
///                                           under the map lock)
///   scheduler gate -> inject -> park       (Enqueue's fixed internal chain)
///   anything -> MetricsRegistry -> (none)  (registration is a leaf; only
///                                           the Logger ranks below it)
///
/// Two rules of thumb keep the table stable:
///  1. Subsystems that *call into* other subsystems while holding their
///     lock must outrank-precede them (appear earlier / lower).
///  2. Never call TaskGroup::Wait / ParallelFor holding ANY ranked lock:
///     the caller-helps waiter executes arbitrary unrelated tasks, which
///     may acquire any rank in the table (see the scheduler's analysis
///     boundary in DESIGN.md).
///
/// Gaps between values are deliberate — new subsystems slot in without
/// renumbering.
enum class LockRank : int {
  /// RestApi's stored-workflow table; outermost, taken at the HTTP edge.
  kRestApiWorkflows = 100,
  /// ControlPlane routing/assignment table. Holds while calling into
  /// replica JobServices (Submit/stats) and the job journal, so it must
  /// precede both kJobService and kJobJournal.
  kControlPlane = 150,
  /// JobService job table / admission queue. Holds while submitting
  /// scheduler tasks, journaling and tracing — everything below.
  kJobService = 200,
  /// JobJournal record log. Appended to from under the control-plane lock
  /// *and* from replica finalization paths holding kJobService, hence it
  /// sits between kJobService and the caches below.
  kJobJournal = 230,
  /// SqlService parameterized-shape cache (lookup/insert only; never held
  /// across optimize).
  kSqlShapeCache = 250,
  /// PlanCache entry map (leaf within the planner: metric writes under it
  /// are atomic counters only).
  kPlanCache = 300,
  /// PlannerContext candidate-index shard. One shard at a time; resolution
  /// (library + engine reads) runs *between* the shard lock sections.
  kPlannerContextShard = 350,
  /// OperatorLibrary reader/writer lock.
  kOperatorLibrary = 400,
  /// ModelLibrary pair-map lock; held while taking per-pair locks during
  /// directory export, hence it precedes kModelLibraryPair.
  kModelLibraryMap = 450,
  /// ModelLibrary per-(algorithm,engine) estimator lock.
  kModelLibraryPair = 500,
  /// EngineRegistry breaker state; journals transitions and registers
  /// gauges while held.
  kEngineRegistry = 550,
  /// NsgaResourceProvisioner front snapshot (never held across the GA —
  /// the GA fans out onto the scheduler).
  kResourceProvisioner = 600,
  /// DriftObservatory pair map; registers metrics while held.
  kDriftObservatory = 650,
  /// SloMonitor history; visits the metrics registry while held.
  kSloMonitor = 700,
  /// TaskScheduler shutdown admission gate (shared by every Submit).
  kSchedulerGate = 750,
  /// TaskScheduler external-injection queue (nested inside the gate).
  kSchedulerInject = 760,
  /// TaskScheduler parking lot (nested inside gate+inject via NotifyOne).
  kSchedulerPark = 770,
  /// TaskScheduler backlog timer (standalone, polled by healthz).
  kSchedulerBacklog = 780,
  /// TaskGroup completion latch / inline-task list.
  kTaskGroup = 800,
  /// EventJournal ring shard. One shard at a time (queries lock
  /// sequentially, never simultaneously).
  kEventJournalShard = 850,
  /// TraceContext span list.
  kTraceContext = 900,
  /// MetricsRegistry family registration/render lock. Innermost subsystem
  /// lock: everything may register metrics while locked, the registry
  /// itself calls nothing (user callbacks in Visit* must not re-enter).
  kMetricsRegistry = 950,
  /// Logger sink; log lines may be emitted from under any lock above.
  kLogger = 990,
  /// Default for ad-hoc/test mutexes: nothing ranked may be acquired while
  /// holding a leaf.
  kLeaf = 1000,
};

constexpr int LockRankValue(LockRank rank) { return static_cast<int>(rank); }

}  // namespace ires

#endif  // IRES_COMMON_MUTEX_RANKS_H_
