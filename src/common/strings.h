#ifndef IRES_COMMON_STRINGS_H_
#define IRES_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace ires {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits and trims ASCII whitespace from every field; drops empty fields.
std::vector<std::string> SplitAndTrim(std::string_view text, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Lowercases ASCII characters.
std::string ToLower(std::string_view text);

/// Minimal JSON string escaping (quotes, backslash, control characters) for
/// hand-assembled API / diagnostics payloads.
std::string JsonEscape(const std::string& text);

/// Parses a complete base-10 integer, returning `fallback` on malformed
/// input, trailing garbage or int overflow (unlike std::atoi, which returns
/// an indistinguishable 0 for all of those).
int ParseIntOr(const std::string& text, int fallback);

/// Formats a byte count as a human-readable string ("1.5GB").
std::string HumanBytes(double bytes);

/// Formats a duration in seconds with ms precision ("12.345s").
std::string HumanSeconds(double seconds);

}  // namespace ires

#endif  // IRES_COMMON_STRINGS_H_
