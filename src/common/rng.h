#ifndef IRES_COMMON_RNG_H_
#define IRES_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ires {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64). All stochastic components of the platform — profiling noise,
/// NSGA-II, model training shuffles, workflow generators, fault injection —
/// draw from an Rng instance so that experiments replay bit-identically.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Derives an independent child generator; used to give each subsystem its
  /// own stream without coupling their consumption order.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace ires

#endif  // IRES_COMMON_RNG_H_
