#include "common/mutex.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

namespace ires {
namespace lock_rank {
namespace {

std::atomic<bool> g_checks_enabled{
#ifdef NDEBUG
    false
#else
    true
#endif
};

struct HeldLock {
  const void* mu;
  LockRank rank;
  const char* name;
  bool shared;
};

// Acquisition-ordered list of ranked locks this thread holds (outermost
// first). Bookkeeping only runs while checking is enabled, so the release
// path must tolerate entries that were never recorded.
thread_local std::vector<HeldLock> t_held;

// Witness table for the blessed direction of each rank edge: the first
// time any thread acquires rank B while holding rank A we remember that
// thread's lock set. When a later thread attempts the inverted order we
// can print *both* sides of the would-be deadlock, not just the current
// stack. Keyed by rank (not address) so the witness survives mutex
// destruction; guarded by a raw std::mutex that is deliberately outside
// the rank system (it is a leaf internal to the checker itself).
std::mutex g_edges_mu;
std::map<std::pair<int, int>, std::string>& Edges() {
  static std::map<std::pair<int, int>, std::string> edges;
  return edges;
}

std::string Describe(const std::vector<HeldLock>& held) {
  std::ostringstream out;
  for (size_t i = 0; i < held.size(); ++i) {
    if (i > 0) out << " -> ";
    out << held[i].name << "(" << LockRankValue(held[i].rank)
        << (held[i].shared ? ", shared" : "") << ")";
  }
  if (held.empty()) out << "<none>";
  return out.str();
}

void RecordEdges(LockRank acquired) {
  std::ostringstream tid;
  tid << std::this_thread::get_id();
  std::string snapshot =
      "thread " + tid.str() + " held [" + Describe(t_held) + "]";
  std::lock_guard<std::mutex> lock(g_edges_mu);
  auto& edges = Edges();
  for (const HeldLock& held : t_held) {
    edges.emplace(
        std::make_pair(LockRankValue(held.rank), LockRankValue(acquired)),
        snapshot);
  }
}

[[noreturn]] void Die(const char* kind, const HeldLock& attempted) {
  std::ostringstream msg;
  msg << "lock-rank violation (" << kind << "): thread attempting to acquire "
      << attempted.name << "(" << LockRankValue(attempted.rank)
      << (attempted.shared ? ", shared" : "") << ") while holding ["
      << Describe(t_held) << "]";
  // Print the recorded blessed direction of the conflicting edge(s), i.e.
  // the "other stack" of the potential deadlock.
  {
    std::lock_guard<std::mutex> lock(g_edges_mu);
    const auto& edges = Edges();
    for (const HeldLock& held : t_held) {
      auto it = edges.find(std::make_pair(LockRankValue(attempted.rank),
                                          LockRankValue(held.rank)));
      if (it != edges.end()) {
        msg << "; opposite order " << LockRankValue(attempted.rank) << "->"
            << LockRankValue(held.rank) << " previously taken by "
            << it->second;
      }
    }
  }
  std::fprintf(stderr, "[ires::Mutex] %s\n", msg.str().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace

bool ChecksEnabled() {
  return g_checks_enabled.load(std::memory_order_relaxed);
}

void SetChecksEnabled(bool enabled) {
  g_checks_enabled.store(enabled, std::memory_order_relaxed);
}

void CheckAcquire(const void* mu, LockRank rank, const char* name,
                  bool shared) {
  if (!ChecksEnabled()) return;
  HeldLock attempted{mu, rank, name, shared};
  for (const HeldLock& held : t_held) {
    if (held.mu == mu) {
      Die(held.shared && !shared ? "shared->exclusive upgrade"
                                 : "recursive acquire",
          attempted);
    }
  }
  if (!t_held.empty() &&
      LockRankValue(rank) <= LockRankValue(t_held.back().rank)) {
    Die("rank inversion", attempted);
  }
}

void OnAcquire(const void* mu, LockRank rank, const char* name, bool shared) {
  if (!ChecksEnabled()) return;
  CheckAcquire(mu, rank, name, shared);
  RecordEdges(rank);
  t_held.push_back({mu, rank, name, shared});
}

void OnRelease(const void* mu) {
  // Locks are usually released LIFO, but scan the whole list so manual
  // Lock/Unlock pairs with overlapping lifetimes (and holds recorded
  // before checking was toggled off) stay consistent.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mu == mu) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

int HeldCount() { return static_cast<int>(t_held.size()); }

std::string DescribeHeld() { return Describe(t_held); }

}  // namespace lock_rank
}  // namespace ires
