#ifndef IRES_COMMON_THREAD_ANNOTATIONS_H_
#define IRES_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis capability macros (the `-Wthread-safety`
/// attribute family). Under Clang every macro expands to the corresponding
/// attribute and the analysis proves, at compile time, that each
/// GUARDED_BY member is only touched with its mutex held, that every
/// REQUIRES contract is met at each call site, and that EXCLUDES methods
/// are never entered with the lock already held. Under GCC (which has no
/// such analysis) they expand to nothing, so the annotations are free
/// documentation there — the CI `thread-safety` job builds src/ + tools/
/// with Clang and `-Werror=thread-safety`, which is where the proofs are
/// actually checked.
///
/// The vocabulary (mirrors the Clang documentation and Abseil's
/// thread_annotations.h):
///   GUARDED_BY(mu)      field: reads need mu held (shared ok), writes
///                       need it exclusively
///   PT_GUARDED_BY(mu)   pointer field: the *pointee* is guarded by mu
///   REQUIRES(mu)        function: caller must hold mu exclusively
///   REQUIRES_SHARED(mu) function: caller must hold mu (shared suffices)
///   EXCLUDES(mu)        function: caller must NOT hold mu (the public
///                       entry points of a class that locks internally)
///   ACQUIRE/RELEASE     function acquires/releases the capability
///   CAPABILITY("mutex") class declares itself a lockable capability
///   SCOPED_CAPABILITY   RAII class that acquires in its constructor and
///                       releases in its destructor
///   NO_THREAD_SAFETY_ANALYSIS
///                       opt one function out of the analysis. Repo
///                       policy: every use carries a comment justifying
///                       why the analysis cannot see the invariant
///                       (tools/lockcheck rejects bare escapes).
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define IRES_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef IRES_THREAD_ANNOTATION_
#define IRES_THREAD_ANNOTATION_(x)  // not Clang: annotations are comments
#endif

#define CAPABILITY(x) IRES_THREAD_ANNOTATION_(capability(x))
#define SCOPED_CAPABILITY IRES_THREAD_ANNOTATION_(scoped_lockable)

#define GUARDED_BY(x) IRES_THREAD_ANNOTATION_(guarded_by(x))
#define PT_GUARDED_BY(x) IRES_THREAD_ANNOTATION_(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) IRES_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) IRES_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#define REQUIRES(...) IRES_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  IRES_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) IRES_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  IRES_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) IRES_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  IRES_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  IRES_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  IRES_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  IRES_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) IRES_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) IRES_THREAD_ANNOTATION_(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  IRES_THREAD_ANNOTATION_(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) IRES_THREAD_ANNOTATION_(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  IRES_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // IRES_COMMON_THREAD_ANNOTATIONS_H_
