#ifndef IRES_COMMON_JSON_H_
#define IRES_COMMON_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace ires {

/// A parsed JSON value — the request-body side of the REST surface. The
/// server renders its responses with hand-written snprintf JSON (fast,
/// allocation-light); requests arrive as arbitrary client JSON, which this
/// small recursive-descent parser turns into a navigable tree. It accepts
/// strict RFC 8259 input (no comments, no trailing commas) with a depth cap
/// so hostile bodies cannot blow the stack.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  /// Object members in document order (duplicate keys keep the last).
  const std::map<std::string, JsonValue>& object() const { return object_; }

  /// Member lookup on objects; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Convenience readers with defaults (type mismatch returns the default).
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  double GetNumber(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// Parses one complete JSON document; trailing non-whitespace is an
  /// error, as is nesting deeper than 64 levels.
  static Result<JsonValue> Parse(const std::string& text);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;

  friend class JsonParser;
};

}  // namespace ires

#endif  // IRES_COMMON_JSON_H_
