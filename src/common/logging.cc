#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <thread>
#include <utility>

#include "common/mutex.h"

namespace ires {

namespace {

std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarning)};

/// Guards both the sink slot and the actual emission, so a SetSink swap
/// never races a Log call into a half-replaced sink and concurrent
/// worker-pool logs never interleave mid-line. kLogger is the innermost
/// rank in the table: log lines are emitted from under any other lock,
/// and the sink itself must acquire nothing ranked.
ires::Mutex& SinkMutex() {
  static ires::Mutex mu(LockRank::kLogger, "logger.sink");
  return mu;
}

Logger::Sink& SinkSlot() {
  static Logger::Sink sink;  // null = default stderr sink
  return sink;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

/// `2026-08-07T12:34:56.789Z` — UTC with millisecond precision.
std::string Iso8601Now() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, millis);
  return buf;
}

}  // namespace

LogLevel Logger::threshold() {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

void Logger::set_threshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

void Logger::SetSink(Sink sink) {
  MutexLock lock(SinkMutex());
  SinkSlot() = std::move(sink);
}

std::string Logger::Format(LogLevel level, const std::string& message) {
  std::ostringstream tid;
  tid << std::this_thread::get_id();
  return Iso8601Now() + " [" + LevelName(level) + "] [tid " + tid.str() +
         "] " + message;
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_threshold.load(std::memory_order_relaxed)) {
    return;
  }
  const std::string line = Format(level, message);
  MutexLock lock(SinkMutex());
  if (SinkSlot()) {
    SinkSlot()(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace ires
