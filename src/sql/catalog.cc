#include "sql/catalog.h"

namespace ires::sql {

const ColumnStats* TableDef::FindColumn(const std::string& column) const {
  for (const ColumnStats& c : columns) {
    if (c.name == column) return &c;
  }
  return nullptr;
}

Status Catalog::AddTable(TableDef table) {
  if (table.name.empty()) return Status::InvalidArgument("table needs a name");
  if (tables_.count(table.name) > 0) {
    return Status::AlreadyExists("table: " + table.name);
  }
  tables_.emplace(table.name, std::move(table));
  return Status::OK();
}

const TableDef* Catalog::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Status Catalog::SetTableEngine(const std::string& table,
                               const std::string& engine) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table: " + table);
  it->second.engine = engine;
  return Status::OK();
}

Catalog MakeTpchCatalog(double scale_gb, const std::string& small_engine,
                        const std::string& medium_engine,
                        const std::string& large_engine) {
  Catalog catalog;
  const double sf = scale_gb;  // TPC-H scale factor ~ dataset size in GB

  auto add = [&](const std::string& name, const std::string& engine,
                 double rows, double row_bytes,
                 std::vector<ColumnStats> columns) {
    TableDef t;
    t.name = name;
    t.engine = engine;
    t.rows = rows;
    t.row_bytes = row_bytes;
    t.columns = std::move(columns);
    (void)catalog.AddTable(std::move(t));
  };

  // Cardinalities from the TPC-H specification (per scale factor).
  add("nation", small_engine, 25, 128,
      {{"n_nationkey", 25}, {"n_regionkey", 5}, {"n_name", 25}});
  add("region", small_engine, 5, 124,
      {{"r_regionkey", 5}, {"r_name", 5}});
  add("customer", small_engine, 150e3 * sf, 180,
      {{"c_custkey", 150e3 * sf},
       {"c_nationkey", 25},
       {"c_name", 150e3 * sf},
       {"c_acctbal", 100e3}});
  add("supplier", medium_engine, 10e3 * sf, 160,
      {{"s_suppkey", 10e3 * sf}, {"s_nationkey", 25}});
  add("part", medium_engine, 200e3 * sf, 156,
      {{"p_partkey", 200e3 * sf},
       {"p_retailprice", 20e3},
       {"p_name", 200e3 * sf},
       {"p_size", 50}});
  add("partsupp", medium_engine, 800e3 * sf, 144,
      {{"ps_partkey", 200e3 * sf},
       {"ps_suppkey", 10e3 * sf},
       {"ps_supplycost", 100e3}});
  add("orders", large_engine, 1.5e6 * sf, 120,
      {{"o_orderkey", 1.5e6 * sf},
       {"o_custkey", 150e3 * sf},
       {"o_orderdate", 2406},
       {"o_totalprice", 1e6}});
  add("lineitem", large_engine, 6e6 * sf, 112,
      {{"l_orderkey", 1.5e6 * sf},
       {"l_partkey", 200e3 * sf},
       {"l_suppkey", 10e3 * sf},
       {"l_quantity", 50},
       {"l_shipdate", 2526},
       {"l_extendedprice", 1e6}});
  return catalog;
}

}  // namespace ires::sql
