#ifndef IRES_SQL_LOWERING_H_
#define IRES_SQL_LOWERING_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "operators/operator_library.h"
#include "sql/catalog.h"
#include "sql/musqle_optimizer.h"
#include "sql/sql_parser.h"
#include "workflow/workflow_graph.h"

namespace ires::sql {

/// Canonical *shape* of a query: the query text with every literal replaced
/// by `?`. Two queries that differ only in literal values share a shape —
/// and, because the optimizer's selectivity model depends on operators and
/// column statistics but never on literal values, they share an optimal
/// plan. The shape is the unit of plan-cache reuse for SQL.
std::string QueryShape(const Query& query);

/// FNV-1a hash of QueryShape(query).
uint64_t QueryShapeHash(const Query& query);

/// Stable identifier `sqlq_<16 hex digits>` used to name the lowered
/// workflow and its graph nodes.
std::string QueryShapeId(const Query& query);

/// Maps a MuSQLE federated-engine name ("PostgreSQL", "MemSQL", "SparkSQL")
/// to the workflow-layer execution engine that hosts it. Fails on names
/// outside the standard fleet.
Result<std::string> WorkflowEngineFor(const std::string& sql_engine);

/// Registers the shared SQL operator implementations (SqlScan / SqlJoin /
/// SqlMove on each hosting engine) in `library`. Idempotent: operators
/// already present are skipped, so repeat calls never bump the library
/// version (which would invalidate the plan cache). Returns the number of
/// operators actually added.
int EnsureSqlOperators(OperatorLibrary* library);

/// Registers the materialized base-table dataset `sql_table_<name>` for
/// `table` (location, store, size and cardinality from the catalog).
/// Idempotent like EnsureSqlOperators.
Status EnsureTableDataset(const Catalog& catalog, const std::string& table,
                          OperatorLibrary* library);

/// A federated SqlPlan lowered onto the IReS workflow stack.
struct LoweredWorkflow {
  WorkflowGraph graph;
  std::string shape_id;     // sqlq_<hash> — prefix of every node name
  std::string shape;        // canonical shape string (QueryShape)
  std::string target;       // name of the target dataset node
  std::string result_engine;
  /// Library artefacts registered by this lowering. 0 means every artefact
  /// already existed — the library version did not move, so a previously
  /// cached plan for this shape is served warm.
  int new_registrations = 0;
  int scan_ops = 0;
  int join_ops = 0;
  int move_ops = 0;
};

/// Lowers an optimized SqlPlan into a WorkflowGraph submittable through the
/// ordinary serving stack. Every plan node becomes one operator node named
/// `<shape_id>_n<k>` producing dataset `<shape_id>_d<k>`; scans and
/// replication moves read the registered base-table datasets. Each operator
/// carries an abstract pattern pinning `Constraints.Engine` to the engine
/// MuSQLE chose, so the DP planner resolves exactly one candidate per node
/// and injects no extra moves — MuSQLE's move nodes are already explicit
/// SqlMove operators. Per-shape abstracts are registered on first sighting
/// only; re-lowering the same shape registers nothing.
Result<LoweredWorkflow> LowerSqlPlan(const Query& query, const SqlPlan& plan,
                                     const Catalog& catalog,
                                     OperatorLibrary* library);

}  // namespace ires::sql

#endif  // IRES_SQL_LOWERING_H_
