#ifndef IRES_SQL_TPCH_QUERIES_H_
#define IRES_SQL_TPCH_QUERIES_H_

#include <string>
#include <vector>

namespace ires::sql {

/// The MuSQLE evaluation query set (paper §IX-B): 18 TPC-H-derived queries,
/// Q0-Q8 join-only (large outputs) and Q9-Q17 join+filter (ranging
/// selectivity), over 2-7 tables each.
inline std::vector<std::string> MusqleQuerySet() {
  return {
      // ---- join-only (Q0 - Q8) ----
      /*Q0*/ "SELECT * FROM nation, region WHERE n_regionkey = r_regionkey",
      /*Q1*/ "SELECT * FROM customer, nation WHERE c_nationkey = n_nationkey",
      /*Q2*/ "SELECT * FROM customer, orders WHERE c_custkey = o_custkey",
      /*Q3*/ "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey",
      /*Q4*/ "SELECT * FROM part, partsupp WHERE p_partkey = ps_partkey",
      /*Q5*/
      "SELECT * FROM customer, orders, lineitem WHERE "
      "c_custkey = o_custkey AND o_orderkey = l_orderkey",
      /*Q6*/
      "SELECT * FROM part, partsupp, supplier WHERE "
      "p_partkey = ps_partkey AND ps_suppkey = s_suppkey",
      /*Q7*/
      "SELECT * FROM customer, nation, region, orders WHERE "
      "c_nationkey = n_nationkey AND n_regionkey = r_regionkey AND "
      "c_custkey = o_custkey",
      /*Q8*/
      "SELECT * FROM part, partsupp, lineitem, orders WHERE "
      "p_partkey = ps_partkey AND l_partkey = p_partkey AND "
      "o_orderkey = l_orderkey",
      // ---- join + filter (Q9 - Q17) ----
      /*Q9*/
      "SELECT * FROM nation, region WHERE n_regionkey = r_regionkey AND "
      "n_name = 'GERMANY'",
      /*Q10*/
      "SELECT * FROM customer, nation WHERE c_nationkey = n_nationkey AND "
      "n_name = 'FRANCE'",
      /*Q11*/
      "SELECT * FROM customer, orders WHERE c_custkey = o_custkey AND "
      "c_acctbal > 9000",
      /*Q12*/
      "SELECT * FROM orders, lineitem WHERE o_orderkey = l_orderkey AND "
      "l_shipdate = '1995-03-15'",
      /*Q13*/
      "SELECT * FROM part, partsupp WHERE p_partkey = ps_partkey AND "
      "p_retailprice > 2090",
      /*Q14*/
      "SELECT * FROM customer, orders, lineitem WHERE "
      "c_custkey = o_custkey AND o_orderkey = l_orderkey AND "
      "l_quantity = 49",
      /*Q15*/
      "SELECT * FROM part, partsupp, supplier WHERE "
      "p_partkey = ps_partkey AND ps_suppkey = s_suppkey AND p_size = 15",
      /*Q16*/
      "SELECT c_name, o_orderdate FROM part, partsupp, lineitem, orders, "
      "customer, nation WHERE p_partkey = ps_partkey AND "
      "c_nationkey = n_nationkey AND l_partkey = p_partkey AND "
      "o_custkey = c_custkey AND o_orderkey = l_orderkey AND "
      "p_retailprice > 2090 AND n_name = 'GERMANY'",
      /*Q17*/
      "SELECT * FROM customer, nation, region, orders, lineitem, part, "
      "partsupp WHERE c_nationkey = n_nationkey AND "
      "n_regionkey = r_regionkey AND o_custkey = c_custkey AND "
      "o_orderkey = l_orderkey AND l_partkey = p_partkey AND "
      "p_partkey = ps_partkey AND r_name = 'EUROPE' AND p_size = 15",
  };
}

}  // namespace ires::sql

#endif  // IRES_SQL_TPCH_QUERIES_H_
