#include "sql/calibration.h"

#include <algorithm>
#include <cmath>

namespace ires::sql {

void EstimateCalibrator::Record(const std::string& engine, double estimate,
                                double actual) {
  Series& s = series_[engine];
  s.estimates.push_back(estimate);
  s.actuals.push_back(actual);
}

namespace {

struct LinearFit {
  double slope = 1.0;
  double intercept = 0.0;
};

// Ordinary least squares actual ~ slope * estimate + intercept.
LinearFit FitSeries(const std::vector<double>& x,
                    const std::vector<double>& y) {
  const size_t n = x.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  // Relative degeneracy check: (near-)constant estimates leave the slope
  // unidentifiable, so fall back to the identity mapping.
  if (std::fabs(denom) < 1e-9 * std::max(1.0, n * sxx)) return fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  return fit;
}

}  // namespace

double EstimateCalibrator::Calibrate(const std::string& engine,
                                     double estimate) const {
  auto it = series_.find(engine);
  if (it == series_.end() || it->second.estimates.size() < min_samples()) {
    return estimate;
  }
  const LinearFit fit =
      FitSeries(it->second.estimates, it->second.actuals);
  return std::max(0.0, fit.slope * estimate + fit.intercept);
}

double EstimateCalibrator::Correlation(const std::string& engine) const {
  auto it = series_.find(engine);
  if (it == series_.end() || it->second.estimates.size() < min_samples()) {
    return 0.0;
  }
  const std::vector<double>& x = it->second.estimates;
  const std::vector<double>& y = it->second.actuals;
  const size_t n = x.size();
  double mx = 0, my = 0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx < 1e-12 || syy < 1e-12) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

bool EstimateCalibrator::TrustEngine(const std::string& engine,
                                     Rng* rng) const {
  auto it = series_.find(engine);
  if (it == series_.end() || it->second.estimates.size() < min_samples()) {
    return true;  // no evidence against it yet
  }
  const double correlation = std::max(0.0, Correlation(engine));
  return rng->Uniform() < correlation;
}

size_t EstimateCalibrator::sample_count(const std::string& engine) const {
  auto it = series_.find(engine);
  return it == series_.end() ? 0 : it->second.estimates.size();
}

std::map<std::string, std::unique_ptr<SqlEngine>> CalibrateFleet(
    const std::map<std::string, std::unique_ptr<SqlEngine>>& fleet,
    const EstimateCalibrator* calibrator) {
  std::map<std::string, std::unique_ptr<SqlEngine>> out;
  for (const auto& [name, engine] : fleet) {
    out[name] =
        std::make_unique<CalibratedSqlEngine>(engine.get(), calibrator);
  }
  return out;
}

}  // namespace ires::sql
