#ifndef IRES_SQL_CATALOG_H_
#define IRES_SQL_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace ires::sql {

/// Statistics of one column, as kept by the MuSQLE metastore.
struct ColumnStats {
  std::string name;
  double distinct_values = 1.0;
};

/// Statistics and location of one table.
struct TableDef {
  std::string name;
  std::string engine;      // SQL engine holding the table natively;
                           // "*" = replicated in every federated engine
  double rows = 0.0;
  double row_bytes = 100.0;
  std::vector<ColumnStats> columns;

  double bytes() const { return rows * row_bytes; }
  const ColumnStats* FindColumn(const std::string& column) const;
};

/// Row-count/width statistics of a (possibly intermediate) relation.
struct RelationStats {
  double rows = 0.0;
  double row_bytes = 100.0;
  double bytes() const { return rows * row_bytes; }
};

/// The MuSQLE metastore: schema, statistics and location of every table
/// reachable from the federated engines.
class Catalog {
 public:
  Catalog() = default;

  Status AddTable(TableDef table);
  const TableDef* FindTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// Moves a table's primary location (used by placement experiments).
  Status SetTableEngine(const std::string& table, const std::string& engine);

 private:
  std::map<std::string, TableDef> tables_;
};

/// Builds the TPC-H schema at `scale_gb` with the evaluation's placement:
/// small legacy tables (customer, nation, region) in `small_engine`, medium
/// tables (part, partsupp, supplier) in `medium_engine`, large tables
/// (lineitem, orders) in `large_engine`. Cardinalities follow the TPC-H
/// scaling rules (e.g. 6M lineitem rows per scale factor).
Catalog MakeTpchCatalog(double scale_gb, const std::string& small_engine,
                        const std::string& medium_engine,
                        const std::string& large_engine);

}  // namespace ires::sql

#endif  // IRES_SQL_CATALOG_H_
