#ifndef IRES_SQL_CALIBRATION_H_
#define IRES_SQL_CALIBRATION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sql/sql_engine.h"

namespace ires::sql {

/// MuSQLE's estimation-accuracy machinery (paper §V-B): the metastore logs
/// every (engine estimate, measured execution time) pair per engine; from
/// those it
///   1. fits a per-engine linear model mapping the engine's cost units to
///      wall-clock seconds (PostgreSQL EXPLAIN reports page fetches, not
///      seconds - a linear transform is assumed), and
///   2. computes the correlation between estimated and actual times; an
///      engine whose API consistently mispredicts gets a low confidence and
///      is probabilistically discarded from optimization.
class EstimateCalibrator {
 public:
  /// Records one measurement for `engine`.
  void Record(const std::string& engine, double estimate, double actual);

  /// Maps a raw engine estimate to calibrated wall-clock seconds using the
  /// fitted linear model `actual ~ a * estimate + b` (identity until at
  /// least `min_samples()` measurements exist). Never returns < 0.
  double Calibrate(const std::string& engine, double estimate) const;

  /// Pearson correlation between this engine's estimates and the measured
  /// times; 0 when fewer than min_samples() measurements exist.
  double Correlation(const std::string& engine) const;

  /// Confidence-weighted trust decision (paper: "a probability
  /// proportionate to the measured correlation to randomly discard the API
  /// estimation results"). Engines without history are trusted.
  bool TrustEngine(const std::string& engine, Rng* rng) const;

  size_t sample_count(const std::string& engine) const;
  static constexpr size_t min_samples() { return 3; }

 private:
  struct Series {
    std::vector<double> estimates;
    std::vector<double> actuals;
  };
  std::map<std::string, Series> series_;
};

/// Decorator that exposes a SqlEngine through its calibrated cost model:
/// every estimate of the inner engine is passed through the calibrator.
/// Lets the MuSQLE optimizer consume corrected estimates without the engine
/// implementations knowing about calibration.
class CalibratedSqlEngine : public SqlEngine {
 public:
  CalibratedSqlEngine(const SqlEngine* inner,
                      const EstimateCalibrator* calibrator)
      : SqlEngine(inner->name()), inner_(inner), calibrator_(calibrator) {}

  double ScanSeconds(const RelationStats& input,
                     double selectivity) const override {
    return calibrator_->Calibrate(name(),
                                  inner_->ScanSeconds(input, selectivity));
  }
  double JoinSeconds(const RelationStats& left, const RelationStats& right,
                     const RelationStats& output) const override {
    return calibrator_->Calibrate(name(),
                                  inner_->JoinSeconds(left, right, output));
  }
  double LoadSeconds(const RelationStats& input) const override {
    return calibrator_->Calibrate(name(), inner_->LoadSeconds(input));
  }
  bool Feasible(double working_set_bytes) const override {
    return inner_->Feasible(working_set_bytes);
  }
  double TruthFactor(Rng* rng) const override {
    return inner_->TruthFactor(rng);
  }

 private:
  const SqlEngine* inner_;
  const EstimateCalibrator* calibrator_;
};

/// Builds a calibrated view of a fleet (the engines remain owned by
/// `fleet`; the returned map must not outlive it or the calibrator).
std::map<std::string, std::unique_ptr<SqlEngine>> CalibrateFleet(
    const std::map<std::string, std::unique_ptr<SqlEngine>>& fleet,
    const EstimateCalibrator* calibrator);

}  // namespace ires::sql

#endif  // IRES_SQL_CALIBRATION_H_
