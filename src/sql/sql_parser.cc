#include "sql/sql_parser.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace ires::sql {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

std::string Query::ToString() const {
  std::string out = "SELECT ";
  if (select.empty()) {
    out += "*";
  } else {
    for (size_t i = 0; i < select.size(); ++i) {
      if (i > 0) out += ", ";
      out += select[i].ToString();
    }
  }
  out += " FROM " + Join(tables, ", ");
  if (!joins.empty() || !filters.empty()) {
    out += " WHERE ";
    bool first = true;
    for (const JoinPredicate& j : joins) {
      if (!first) out += " AND ";
      first = false;
      out += j.left.ToString() + " " + CompareOpToString(j.op) + " " +
             j.right.ToString();
    }
    for (const FilterPredicate& f : filters) {
      if (!first) out += " AND ";
      first = false;
      out += f.column.ToString() + " " + CompareOpToString(f.op) + " " +
             f.literal;
    }
  }
  return out;
}

namespace {

struct Token {
  enum Kind { kWord, kSymbol, kNumber, kString, kEnd } kind = kEnd;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    size_t i = 0;
    while (i < text_.size()) {
      const char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        while (i < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                text_[i] == '_')) {
          ++i;
        }
        tokens.push_back({Token::kWord, text_.substr(start, i - start)});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[i + 1])))) {
        size_t start = i;
        ++i;
        while (i < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[i])) ||
                text_[i] == '.')) {
          ++i;
        }
        tokens.push_back({Token::kNumber, text_.substr(start, i - start)});
        continue;
      }
      if (c == '\'') {
        size_t end = text_.find('\'', i + 1);
        if (end == std::string::npos) {
          return Status::InvalidArgument("unterminated string literal");
        }
        tokens.push_back({Token::kString, text_.substr(i, end - i + 1)});
        i = end + 1;
        continue;
      }
      // Multi-char comparison operators first.
      if ((c == '<' || c == '>' || c == '!') && i + 1 < text_.size() &&
          (text_[i + 1] == '=' || text_[i + 1] == '>')) {
        tokens.push_back({Token::kSymbol, text_.substr(i, 2)});
        i += 2;
        continue;
      }
      if (c == ',' || c == '.' || c == '=' || c == '<' || c == '>' ||
          c == '(' || c == ')' || c == '*' || c == ';') {
        tokens.push_back({Token::kSymbol, std::string(1, c)});
        ++i;
        continue;
      }
      return Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "' in SQL");
    }
    tokens.push_back({Token::kEnd, ""});
    return tokens;
  }

 private:
  const std::string& text_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Run() {
    Query query;
    IRES_RETURN_IF_ERROR(ExpectKeyword("select"));
    IRES_RETURN_IF_ERROR(ParseSelectList(&query));
    IRES_RETURN_IF_ERROR(ExpectKeyword("from"));
    IRES_RETURN_IF_ERROR(ParseTableList(&query));
    if (IsKeyword("where")) {
      ++pos_;
      IRES_RETURN_IF_ERROR(ParseConjuncts(&query));
    }
    if (Peek().kind == Token::kSymbol && Peek().text == ";") ++pos_;
    if (Peek().kind != Token::kEnd) {
      return Status::InvalidArgument("trailing tokens after query: " +
                                     Peek().text);
    }
    if (query.tables.empty()) {
      return Status::InvalidArgument("query references no tables");
    }
    return query;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    const size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }

  bool IsKeyword(const std::string& word) const {
    return Peek().kind == Token::kWord && ToLower(Peek().text) == word;
  }

  Status ExpectKeyword(const std::string& word) {
    if (!IsKeyword(word)) {
      return Status::InvalidArgument("expected '" + word + "' got '" +
                                     Peek().text + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Result<ColumnRef> ParseColumnRef() {
    if (Peek().kind != Token::kWord) {
      return Status::InvalidArgument("expected identifier, got '" +
                                     Peek().text + "'");
    }
    ColumnRef ref;
    ref.column = Peek().text;
    ++pos_;
    if (Peek().kind == Token::kSymbol && Peek().text == ".") {
      ++pos_;
      if (Peek().kind != Token::kWord) {
        return Status::InvalidArgument("expected column after '.'");
      }
      ref.table = ref.column;
      ref.column = Peek().text;
      ++pos_;
    }
    return ref;
  }

  Status ParseSelectList(Query* query) {
    if (Peek().kind == Token::kSymbol && Peek().text == "*") {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      IRES_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
      query->select.push_back(std::move(ref));
      if (Peek().kind == Token::kSymbol && Peek().text == ",") {
        ++pos_;
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Status ParseTableList(Query* query) {
    while (true) {
      if (Peek().kind != Token::kWord) {
        return Status::InvalidArgument("expected table name, got '" +
                                       Peek().text + "'");
      }
      query->tables.push_back(ToLower(Peek().text));
      ++pos_;
      if (Peek().kind == Token::kSymbol && Peek().text == ",") {
        ++pos_;
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Result<CompareOp> ParseCompareOp() {
    if (Peek().kind != Token::kSymbol) {
      return Status::InvalidArgument("expected comparison operator, got '" +
                                     Peek().text + "'");
    }
    const std::string& s = Peek().text;
    CompareOp op;
    if (s == "=") {
      op = CompareOp::kEq;
    } else if (s == "<>" || s == "!=") {
      op = CompareOp::kNe;
    } else if (s == "<") {
      op = CompareOp::kLt;
    } else if (s == "<=") {
      op = CompareOp::kLe;
    } else if (s == ">") {
      op = CompareOp::kGt;
    } else if (s == ">=") {
      op = CompareOp::kGe;
    } else {
      return Status::InvalidArgument("unknown operator: " + s);
    }
    ++pos_;
    return op;
  }

  Status ParseConjuncts(Query* query) {
    while (true) {
      IRES_ASSIGN_OR_RETURN(ColumnRef left, ParseColumnRef());
      IRES_ASSIGN_OR_RETURN(CompareOp op, ParseCompareOp());
      if (Peek().kind == Token::kWord) {
        // column <op> column -> join predicate
        IRES_ASSIGN_OR_RETURN(ColumnRef right, ParseColumnRef());
        JoinPredicate join;
        join.left = std::move(left);
        join.right = std::move(right);
        join.op = op;
        query->joins.push_back(std::move(join));
      } else if (Peek().kind == Token::kNumber ||
                 Peek().kind == Token::kString) {
        FilterPredicate filter;
        filter.column = std::move(left);
        filter.op = op;
        filter.literal = Peek().text;
        if (Peek().kind == Token::kNumber) {
          filter.is_numeric = true;
          filter.numeric_value = std::strtod(Peek().text.c_str(), nullptr);
        }
        ++pos_;
        query->filters.push_back(std::move(filter));
      } else {
        return Status::InvalidArgument("expected literal or column after " +
                                       std::string(CompareOpToString(op)));
      }
      if (IsKeyword("and")) {
        ++pos_;
        continue;
      }
      break;
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> SqlParser::Parse(const std::string& text) {
  Lexer lexer(text);
  IRES_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Run();
}

}  // namespace ires::sql
