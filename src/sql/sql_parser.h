#ifndef IRES_SQL_SQL_PARSER_H_
#define IRES_SQL_SQL_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace ires::sql {

/// A column reference `table.column` (or bare `column`, resolved later).
struct ColumnRef {
  std::string table;
  std::string column;
  std::string ToString() const {
    return table.empty() ? column : table + "." + column;
  }
};

/// Comparison operators supported in WHERE conjuncts.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpToString(CompareOp op);

/// `col <op> col` — an equi/theta join condition (only kEq joins are used
/// for join-graph edges; others are treated as post-filters).
struct JoinPredicate {
  ColumnRef left;
  ColumnRef right;
  CompareOp op = CompareOp::kEq;
};

/// `col <op> literal` — a selection on one table.
struct FilterPredicate {
  ColumnRef column;
  CompareOp op = CompareOp::kEq;
  std::string literal;      // raw literal text
  double numeric_value = 0; // parsed when numeric
  bool is_numeric = false;
};

/// A parsed Select-Project-Join query.
struct Query {
  std::vector<ColumnRef> select;  // empty = SELECT *
  std::vector<std::string> tables;
  std::vector<JoinPredicate> joins;
  std::vector<FilterPredicate> filters;
  std::string ToString() const;
};

/// Recursive-descent parser for the SPJ SQL subset MuSQLE optimizes:
///   SELECT <cols|*> FROM t1 [, t2 ...]
///   [WHERE <conjunct> [AND <conjunct>]*]
/// where each conjunct is `a.b = c.d` (join) or `a.b <op> literal` (filter).
/// Keywords are case-insensitive; literals are numbers or 'quoted strings'.
class SqlParser {
 public:
  static Result<Query> Parse(const std::string& text);
};

}  // namespace ires::sql

#endif  // IRES_SQL_SQL_PARSER_H_
