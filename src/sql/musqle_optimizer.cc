#include "sql/musqle_optimizer.h"

#include "sql/dpccp.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>

namespace ires::sql {

std::string SqlPlan::ToString() const {
  std::string out;
  std::function<void(int, int)> visit = [&](int id, int depth) {
    const SqlPlanNode& node = nodes[id];
    char line[256];
    const char* kind = node.kind == SqlPlanNode::Kind::kScan   ? "scan"
                       : node.kind == SqlPlanNode::Kind::kJoin ? "join"
                                                                : "move";
    std::snprintf(line, sizeof(line), "%*s%s @%s %s rows=%.0f est=%.3fs\n",
                  depth * 2, "", kind, node.engine.c_str(),
                  node.table.c_str(), node.output.rows, node.seconds);
    out += line;
    for (int child : node.children) visit(child, depth + 1);
  };
  if (root >= 0) visit(root, 0);
  char total[96];
  std::snprintf(total, sizeof(total), "total est=%.3fs @%s\n", total_seconds,
                result_engine.c_str());
  out += total;
  return out;
}

int SqlPlan::CountKind(SqlPlanNode::Kind kind) const {
  int count = 0;
  std::function<void(int)> visit = [&](int id) {
    if (nodes[id].kind == kind) ++count;
    for (int child : nodes[id].children) visit(child);
  };
  if (root >= 0) visit(root);
  return count;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Resolved view of the query against the catalog.
struct ResolvedQuery {
  std::vector<const TableDef*> tables;     // by query table index
  std::vector<double> selectivity;         // per table, from its filters
  std::vector<RelationStats> filtered;     // base stats after filters
  struct Edge {
    int left_table;
    int right_table;
    double left_distinct;
    double right_distinct;
  };
  std::vector<Edge> edges;                 // equality joins
  /// Non-equality (theta) predicates between two tables: applied as
  /// selectivity on any subset containing both, but they do not create
  /// join-graph edges.
  struct ThetaFilter {
    uint32_t tables_mask;
    double selectivity;
  };
  std::vector<ThetaFilter> theta_filters;
  std::vector<uint32_t> adjacency;         // per table: bitmask of neighbors
};

double FilterSelectivity(const FilterPredicate& filter,
                         const ColumnStats* column) {
  const double distinct = std::max(1.0, column ? column->distinct_values : 10.0);
  switch (filter.op) {
    case CompareOp::kEq: return 1.0 / distinct;
    case CompareOp::kNe: return 1.0 - 1.0 / distinct;
    case CompareOp::kLt:
    case CompareOp::kLe:
    case CompareOp::kGt:
    case CompareOp::kGe: return 1.0 / 3.0;
  }
  return 1.0;
}

Result<int> ResolveColumn(const Query& query,
                          const std::vector<const TableDef*>& tables,
                          const ColumnRef& ref) {
  if (!ref.table.empty()) {
    for (size_t i = 0; i < query.tables.size(); ++i) {
      if (query.tables[i] == ref.table) {
        if (tables[i]->FindColumn(ref.column) == nullptr) {
          return Status::NotFound("column " + ref.ToString());
        }
        return static_cast<int>(i);
      }
    }
    return Status::NotFound("table " + ref.table + " not in FROM list");
  }
  for (size_t i = 0; i < tables.size(); ++i) {
    if (tables[i]->FindColumn(ref.column) != nullptr) {
      return static_cast<int>(i);
    }
  }
  return Status::NotFound("column " + ref.column + " not found in any table");
}

Result<ResolvedQuery> Resolve(const Query& query, const Catalog& catalog) {
  ResolvedQuery out;
  for (const std::string& name : query.tables) {
    const TableDef* table = catalog.FindTable(name);
    if (table == nullptr) return Status::NotFound("table: " + name);
    out.tables.push_back(table);
  }
  const size_t n = out.tables.size();
  out.selectivity.assign(n, 1.0);
  out.adjacency.assign(n, 0);

  for (const FilterPredicate& filter : query.filters) {
    IRES_ASSIGN_OR_RETURN(int t, ResolveColumn(query, out.tables, filter.column));
    const ColumnStats* column =
        out.tables[t]->FindColumn(filter.column.column);
    out.selectivity[t] *= FilterSelectivity(filter, column);
  }
  out.filtered.resize(n);
  for (size_t i = 0; i < n; ++i) {
    out.filtered[i].rows =
        std::max(1.0, out.tables[i]->rows * out.selectivity[i]);
    out.filtered[i].row_bytes = out.tables[i]->row_bytes;
  }

  for (const JoinPredicate& join : query.joins) {
    IRES_ASSIGN_OR_RETURN(int lt, ResolveColumn(query, out.tables, join.left));
    IRES_ASSIGN_OR_RETURN(int rt, ResolveColumn(query, out.tables, join.right));
    if (join.op != CompareOp::kEq) {
      // Theta join: selectivity-only (1/3 for ranges, standard default).
      if (lt != rt) {
        out.theta_filters.push_back(
            {(1u << lt) | (1u << rt),
             join.op == CompareOp::kNe ? 0.9 : 1.0 / 3.0});
      }
      continue;
    }
    if (lt == rt) continue;  // same-table predicate, acts as a filter
    ResolvedQuery::Edge edge;
    edge.left_table = lt;
    edge.right_table = rt;
    const ColumnStats* lc = out.tables[lt]->FindColumn(join.left.column);
    const ColumnStats* rc = out.tables[rt]->FindColumn(join.right.column);
    edge.left_distinct = lc ? lc->distinct_values : out.tables[lt]->rows;
    edge.right_distinct = rc ? rc->distinct_values : out.tables[rt]->rows;
    out.adjacency[lt] |= 1u << rt;
    out.adjacency[rt] |= 1u << lt;
    out.edges.push_back(edge);
  }
  return out;
}

bool MaskConnected(uint32_t mask, const std::vector<uint32_t>& adjacency) {
  if (mask == 0) return false;
  const uint32_t start = mask & static_cast<uint32_t>(-static_cast<int32_t>(mask));
  uint32_t reached = start;
  uint32_t frontier = start;
  while (frontier != 0) {
    uint32_t next = 0;
    for (uint32_t rest = frontier; rest != 0; rest &= rest - 1) {
      const int bit = __builtin_ctz(rest);
      next |= adjacency[bit] & mask & ~reached;
    }
    reached |= next;
    frontier = next;
  }
  return reached == mask;
}

// Cardinality of the join over the tables in `mask`: product of filtered
// base cardinalities, divided by max-distinct per connecting equality edge
// (System-R style independence assumptions).
RelationStats SubsetStats(uint32_t mask, const ResolvedQuery& rq) {
  RelationStats stats;
  double rows = 1.0;
  double width = 0.0;
  for (uint32_t rest = mask; rest != 0; rest &= rest - 1) {
    const int t = __builtin_ctz(rest);
    rows *= rq.filtered[t].rows;
    width += rq.filtered[t].row_bytes;
  }
  for (const ResolvedQuery::Edge& edge : rq.edges) {
    const uint32_t both = (1u << edge.left_table) | (1u << edge.right_table);
    if ((mask & both) != both) continue;
    const double dl =
        std::min(edge.left_distinct, rq.filtered[edge.left_table].rows);
    const double dr =
        std::min(edge.right_distinct, rq.filtered[edge.right_table].rows);
    rows /= std::max(1.0, std::max(dl, dr));
  }
  for (const ResolvedQuery::ThetaFilter& theta : rq.theta_filters) {
    if ((mask & theta.tables_mask) == theta.tables_mask) {
      rows *= theta.selectivity;
    }
  }
  stats.rows = std::max(1.0, rows);
  stats.row_bytes = std::max(1.0, width);
  return stats;
}

struct DpEntry {
  double seconds = kInf;
  int root = -1;  // arena node id
};

}  // namespace

MusqleOptimizer::MusqleOptimizer(
    const Catalog* catalog,
    const std::map<std::string, std::unique_ptr<SqlEngine>>* engines,
    Options options)
    : catalog_(catalog), engines_(engines), options_(options) {}

Result<RelationStats> MusqleOptimizer::EstimateSubset(
    const Query& query, uint32_t table_mask) const {
  IRES_ASSIGN_OR_RETURN(ResolvedQuery rq, Resolve(query, *catalog_));
  return SubsetStats(table_mask, rq);
}

Result<SqlPlan> MusqleOptimizer::Optimize(const Query& query,
                                          OptimizerStats* stats) const {
  const auto wall_start = std::chrono::steady_clock::now();
  IRES_ASSIGN_OR_RETURN(ResolvedQuery rq, Resolve(query, *catalog_));
  const int n = static_cast<int>(rq.tables.size());
  if (n > 20) return Status::InvalidArgument("too many tables (max 20)");
  const uint32_t full = n == 32 ? ~0u : (1u << n) - 1;
  if (n > 1 && !MaskConnected(full, rq.adjacency)) {
    return Status::InvalidArgument(
        "join graph is disconnected (cartesian products are not enumerated)");
  }

  OptimizerStats local_stats;
  OptimizerStats& st = stats != nullptr ? *stats : local_stats;

  std::vector<SqlPlanNode> arena;
  auto new_node = [&](SqlPlanNode node) {
    node.id = static_cast<int>(arena.size());
    arena.push_back(std::move(node));
    return arena.back().id;
  };

  std::vector<std::map<std::string, DpEntry>> dp(full + 1);

  // Base relations: a scan at each table's home engine. A table homed at
  // "*" is replicated in every federated engine (MuSQLE Fig. 7 setup) and
  // seeds one scan entry per engine.
  for (int t = 0; t < n; ++t) {
    const TableDef* table = rq.tables[t];
    std::vector<std::string> homes;
    if (table->engine == "*") {
      for (const auto& [name, engine] : *engines_) homes.push_back(name);
    } else {
      if (engines_->find(table->engine) == engines_->end()) {
        return Status::NotFound("engine " + table->engine + " (holding " +
                                table->name + ") is not federated");
      }
      homes.push_back(table->engine);
    }
    RelationStats raw{table->rows, table->row_bytes};
    for (const std::string& home : homes) {
      const SqlEngine& engine = *engines_->at(home);
      if (!engine.Feasible(raw.bytes())) continue;
      const double seconds = engine.ScanSeconds(raw, rq.selectivity[t]);
      ++st.explain_calls;
      SqlPlanNode node;
      node.kind = SqlPlanNode::Kind::kScan;
      node.engine = home;
      node.table = table->name;
      node.output = rq.filtered[t];
      node.seconds = seconds;
      DpEntry entry;
      entry.seconds = seconds;
      entry.root = new_node(std::move(node));
      dp[1u << t][home] = entry;
    }
    if (dp[1u << t].empty()) {
      return Status::ResourceExhausted("no engine can scan " + table->name);
    }
    // Bulk replication: any other engine may import the raw table and scan
    // it locally (what the single-engine baselines do); this keeps every
    // single-engine plan inside the multi-engine search space.
    for (const auto& [engine_name, engine] : *engines_) {
      if (dp[1u << t].count(engine_name) > 0) continue;
      if (!engine->Feasible(raw.bytes())) continue;
      const double load = engine->LoadSeconds(raw);
      const double scan = engine->ScanSeconds(raw, rq.selectivity[t]);
      ++st.load_cost_calls;
      ++st.inject_calls;
      ++st.explain_calls;
      SqlPlanNode move;
      move.kind = SqlPlanNode::Kind::kMove;
      move.engine = engine_name;
      move.table = table->name;
      move.output = raw;
      move.seconds = load;
      const int move_id = new_node(std::move(move));
      SqlPlanNode node;
      node.kind = SqlPlanNode::Kind::kScan;
      node.engine = engine_name;
      node.table = table->name;
      node.children = {move_id};
      node.output = rq.filtered[t];
      node.seconds = scan;
      DpEntry entry;
      entry.seconds = load + scan;
      entry.root = new_node(std::move(node));
      dp[1u << t][engine_name] = entry;
    }
  }

  // emitCsgCmp (MuSQLE Algorithm 1): price joining the plans of a connected
  // subgraph and its connected complement on every engine, moving and
  // stat-injecting whichever side lives elsewhere.
  auto emit_csg_cmp = [&](uint32_t s1, uint32_t s2) {
    const uint32_t mask = s1 | s2;
    if (dp[s1].empty() || dp[s2].empty()) return;
    const RelationStats out_stats = SubsetStats(mask, rq);
    {
      for (const auto& [engine_name, engine] : *engines_) {
        for (const auto& [e1, p1] : dp[s1]) {
          for (const auto& [e2, p2] : dp[s2]) {
            // Copies: new_node below may reallocate the arena.
            const RelationStats out1 = arena[p1.root].output;
            const RelationStats out2 = arena[p2.root].output;
            if (!engine->Feasible(out1.bytes() + out2.bytes() +
                                  out_stats.bytes())) {
              continue;
            }
            double extra = 0.0;
            int child1 = p1.root;
            int child2 = p2.root;
            if (e1 != engine_name) {
              const double load = engine->LoadSeconds(out1);
              ++st.load_cost_calls;
              ++st.inject_calls;
              extra += load;
              SqlPlanNode move;
              move.kind = SqlPlanNode::Kind::kMove;
              move.engine = engine_name;
              move.children = {child1};
              move.output = out1;
              move.seconds = load;
              child1 = new_node(std::move(move));
            }
            if (e2 != engine_name) {
              const double load = engine->LoadSeconds(out2);
              ++st.load_cost_calls;
              ++st.inject_calls;
              extra += load;
              SqlPlanNode move;
              move.kind = SqlPlanNode::Kind::kMove;
              move.engine = engine_name;
              move.children = {child2};
              move.output = out2;
              move.seconds = load;
              child2 = new_node(std::move(move));
            }
            const double join_seconds =
                engine->JoinSeconds(out1, out2, out_stats);
            ++st.explain_calls;
            const double total =
                p1.seconds + p2.seconds + extra + join_seconds;
            DpEntry& slot = dp[mask][engine_name];
            if (total < slot.seconds) {
              SqlPlanNode join;
              join.kind = SqlPlanNode::Kind::kJoin;
              join.engine = engine_name;
              join.children = {child1, child2};
              join.output = out_stats;
              join.seconds = join_seconds;
              slot.seconds = total;
              slot.root = new_node(std::move(join));
            }
          }
        }
      }
    }
  };

  switch (options_.enumeration) {
    case Enumeration::kSubmask: {
      // Ascending masks guarantee sub-plans exist before they are used.
      for (uint32_t mask = 1; mask <= full; ++mask) {
        if (__builtin_popcount(mask) < 2) continue;
        if (!MaskConnected(mask, rq.adjacency)) continue;
        const uint32_t low =
            mask & static_cast<uint32_t>(-static_cast<int32_t>(mask));
        for (uint32_t s1 = (mask - 1) & mask; s1 != 0;
             s1 = (s1 - 1) & mask) {
          if ((s1 & low) == 0) continue;  // canonical: csg holds low bit
          const uint32_t s2 = mask ^ s1;
          if (!MaskConnected(s1, rq.adjacency) ||
              !MaskConnected(s2, rq.adjacency)) {
            continue;
          }
          bool linked = false;
          for (const ResolvedQuery::Edge& edge : rq.edges) {
            const uint32_t l = 1u << edge.left_table;
            const uint32_t r = 1u << edge.right_table;
            if (((l & s1) && (r & s2)) || ((l & s2) && (r & s1))) {
              linked = true;
              break;
            }
          }
          if (linked) emit_csg_cmp(s1, s2);
        }
      }
      break;
    }
    case Enumeration::kDpccp: {
      // DPccp emits each pair exactly once but not in subset-size order;
      // sort by the union's population so the DP sees sub-plans first.
      std::vector<std::pair<uint32_t, uint32_t>> pairs;
      EnumerateCsgCmpPairsParallel(rq.adjacency, n, options_.scheduler,
                                   [&](uint32_t s1, uint32_t s2) {
                                     pairs.emplace_back(s1, s2);
                                   });
      std::sort(pairs.begin(), pairs.end(),
                [](const auto& a, const auto& b) {
                  const int pa = __builtin_popcount(a.first | a.second);
                  const int pb = __builtin_popcount(b.first | b.second);
                  if (pa != pb) return pa < pb;
                  return a < b;
                });
      for (const auto& [s1, s2] : pairs) emit_csg_cmp(s1, s2);
      break;
    }
    case Enumeration::kLeftDeep: {
      // One side of every join is a single base relation.
      for (uint32_t mask = 1; mask <= full; ++mask) {
        if (__builtin_popcount(mask) < 2) continue;
        if (!MaskConnected(mask, rq.adjacency)) continue;
        for (uint32_t rest = mask; rest != 0; rest &= rest - 1) {
          const uint32_t s2 = rest & static_cast<uint32_t>(
                                         -static_cast<int32_t>(rest));
          const uint32_t s1 = mask ^ s2;
          if (s1 == 0 || !MaskConnected(s1, rq.adjacency)) continue;
          // s2 is a singleton; it links iff its adjacency touches s1.
          if ((rq.adjacency[__builtin_ctz(s2)] & s1) == 0) continue;
          emit_csg_cmp(s1, s2);
        }
      }
      break;
    }
  }

  const auto& final_entries = dp[full];
  if (final_entries.empty()) {
    return Status::FailedPrecondition("no feasible multi-engine plan");
  }
  auto best = final_entries.begin();
  for (auto it = final_entries.begin(); it != final_entries.end(); ++it) {
    if (it->second.seconds < best->second.seconds) best = it;
  }

  // Extract the reachable subtree into a compact plan.
  SqlPlan plan;
  std::map<int, int> remap;
  std::function<int(int)> extract = [&](int arena_id) -> int {
    auto it = remap.find(arena_id);
    if (it != remap.end()) return it->second;
    SqlPlanNode node = arena[arena_id];
    std::vector<int> children;
    for (int child : node.children) children.push_back(extract(child));
    node.children = std::move(children);
    node.id = static_cast<int>(plan.nodes.size());
    remap[arena_id] = node.id;
    plan.nodes.push_back(std::move(node));
    return plan.nodes.back().id;
  };
  plan.root = extract(best->second.root);
  plan.total_seconds = best->second.seconds;
  plan.result_engine = best->first;

  st.enumeration_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  st.modeled_explain_seconds = st.explain_calls * options_.explain_call_seconds;
  st.modeled_inject_seconds = st.inject_calls * options_.inject_call_seconds;
  return plan;
}

Result<SqlPlan> MusqleOptimizer::PlanSingleEngine(
    const Query& query, const std::string& engine_name) const {
  auto engine_it = engines_->find(engine_name);
  if (engine_it == engines_->end()) {
    return Status::NotFound("engine: " + engine_name);
  }
  const SqlEngine& engine = *engine_it->second;
  IRES_ASSIGN_OR_RETURN(ResolvedQuery rq, Resolve(query, *catalog_));

  // Feasibility of hosting the entire working set in one engine: raw tables
  // plus join intermediates (~2x the raw bytes).
  double raw_bytes = 0.0;
  for (const TableDef* table : rq.tables) raw_bytes += table->bytes();
  if (!engine.Feasible(raw_bytes * 2.0)) {
    return Status::ResourceExhausted(engine_name +
                                     " cannot hold the query working set");
  }

  // Clone the catalog with every table homed at `engine_name` and charge
  // the load costs for the shipped tables.
  Catalog moved;
  double load_seconds = 0.0;
  int moved_tables = 0;
  for (const TableDef* table : rq.tables) {
    TableDef copy = *table;
    if (copy.engine == "*") {
      copy.engine = engine_name;  // replicated: already resident
    } else if (copy.engine != engine_name) {
      load_seconds += engine.LoadSeconds({copy.rows, copy.row_bytes});
      copy.engine = engine_name;
      ++moved_tables;
    }
    IRES_RETURN_IF_ERROR(moved.AddTable(std::move(copy)));
  }
  std::map<std::string, std::unique_ptr<SqlEngine>> solo;
  // Restricted optimizer view: a single-engine fleet. SqlEngine instances
  // are shared-nothing cost models, so rebuilding them is safe.
  auto fleet = MakeStandardSqlEngines();
  auto self = fleet.find(engine_name);
  if (self == fleet.end()) return Status::NotFound("engine: " + engine_name);
  solo[engine_name] = std::move(self->second);

  MusqleOptimizer local(&moved, &solo, options_);
  IRES_ASSIGN_OR_RETURN(SqlPlan plan, local.Optimize(query));

  if (moved_tables > 0) {
    // Account the initial shipment as a move node under the root.
    SqlPlanNode move;
    move.id = static_cast<int>(plan.nodes.size());
    move.kind = SqlPlanNode::Kind::kMove;
    move.engine = engine_name;
    move.table = "(initial table shipment x" +
                 std::to_string(moved_tables) + ")";
    move.children = {plan.root};
    move.output = plan.nodes[plan.root].output;
    move.seconds = load_seconds;
    plan.nodes.push_back(std::move(move));
    plan.root = plan.nodes.back().id;
    plan.total_seconds += load_seconds;
  }
  return plan;
}

SqlExecutionOutcome SimulateSqlPlan(
    const SqlPlan& plan,
    const std::map<std::string, std::unique_ptr<SqlEngine>>& engines,
    Rng* rng) {
  SqlExecutionOutcome outcome;
  std::vector<double> finish(plan.nodes.size(), 0.0);
  // Nodes are emitted children-before-parents within each reachable
  // subtree, but verify via recursion for safety.
  std::function<double(int)> run = [&](int id) -> double {
    const SqlPlanNode& node = plan.nodes[id];
    double ready = 0.0;
    for (int child : node.children) ready = std::max(ready, run(child));
    if (finish[id] > 0.0) return finish[id];  // shared subtree: run once
    double factor = 1.0;
    auto it = engines.find(node.engine);
    if (it != engines.end()) factor = it->second->TruthFactor(rng);
    const double actual = node.seconds * factor;
    outcome.busy_seconds += actual;
    finish[id] = ready + actual;
    return finish[id];
  };
  if (plan.root >= 0) outcome.makespan_seconds = run(plan.root);
  return outcome;
}

double ExecutePlanGroundTruth(
    const SqlPlan& plan,
    const std::map<std::string, std::unique_ptr<SqlEngine>>& engines,
    Rng* rng) {
  return SimulateSqlPlan(plan, engines, rng).busy_seconds;
}

}  // namespace ires::sql
