#ifndef IRES_SQL_DPCCP_H_
#define IRES_SQL_DPCCP_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace ires {
class TaskScheduler;
}  // namespace ires

namespace ires::sql {

/// Enumerates all csg-cmp-pairs of a connected join graph (Moerkotte &
/// Neumann, "Analysis of two existing and one new dynamic programming
/// algorithm for the generation of optimal bushy join trees"): every pair
/// (S1, S2) of disjoint, individually connected vertex sets with at least
/// one edge between them is produced exactly once (up to symmetry; S1 holds
/// the smaller minimum vertex). This is the enumeration MuSQLE's optimizer
/// extends with engine selection.
///
/// `adjacency[v]` is the neighbor bitmask of vertex v; `n` <= 31 vertices.
/// The callback receives (csg, cmp) bitmasks.
void EnumerateCsgCmpPairs(
    const std::vector<uint32_t>& adjacency, int n,
    const std::function<void(uint32_t, uint32_t)>& emit);

/// Parallel variant: the serial outer loop over start vertices (v = n-1..0)
/// decomposes into independent per-seed enumerations, which run across
/// `scheduler` via ParallelFor into per-seed buckets. Buckets are replayed
/// to `emit` in the serial seed order, so the emitted pair sequence is
/// bit-identical to EnumerateCsgCmpPairs — callers may swap the two freely.
/// A null scheduler degrades to the serial enumeration. `emit` is only ever
/// invoked from the calling thread.
void EnumerateCsgCmpPairsParallel(
    const std::vector<uint32_t>& adjacency, int n, TaskScheduler* scheduler,
    const std::function<void(uint32_t, uint32_t)>& emit);

/// Number of connected subgraphs of the graph (used by tests and to size
/// planning-effort estimates).
int CountConnectedSubgraphs(const std::vector<uint32_t>& adjacency, int n);

}  // namespace ires::sql

#endif  // IRES_SQL_DPCCP_H_
