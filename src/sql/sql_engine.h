#ifndef IRES_SQL_SQL_ENGINE_H_
#define IRES_SQL_SQL_ENGINE_H_

#include <cmath>
#include <map>
#include <memory>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "sql/catalog.h"

namespace ires::sql {

/// MuSQLE's generic SQL engine API (paper §IV): every federated engine
/// exposes cost-estimation endpoints (the EXPLAIN-style `ScanSeconds`/
/// `JoinSeconds`), a load-cost endpoint for shipped intermediates, and
/// statistics injection for temp tables. The optimizer works purely against
/// this interface; engine internals stay black-box.
class SqlEngine {
 public:
  explicit SqlEngine(std::string name) : name_(std::move(name)) {}
  virtual ~SqlEngine() = default;

  const std::string& name() const { return name_; }

  /// Estimated seconds to scan `input` applying filters of the given
  /// selectivity.
  virtual double ScanSeconds(const RelationStats& input,
                             double selectivity) const = 0;

  /// Estimated seconds to join two relations resident in this engine,
  /// producing `output`.
  virtual double JoinSeconds(const RelationStats& left,
                             const RelationStats& right,
                             const RelationStats& output) const = 0;

  /// Estimated seconds to load a shipped intermediate into this engine
  /// (the getLoadCost endpoint).
  virtual double LoadSeconds(const RelationStats& input) const = 0;

  /// Statistics injection for a temp table (the injectStats endpoint). The
  /// base implementation records the stats; engines may use them in later
  /// estimates.
  virtual void InjectStats(const std::string& temp_table,
                           const RelationStats& stats) {
    injected_[temp_table] = stats;
  }

  /// Whether this engine can hold a working set of the given size (MemSQL
  /// says no past its aggregate memory; disk-backed engines always can).
  virtual bool Feasible(double working_set_bytes) const {
    (void)working_set_bytes;
    return true;
  }

  /// Multiplicative factor turning an estimate into ground truth for one
  /// operator run: systematic model bias x log-normal noise. The engines'
  /// biases differ, which is what MuSQLE's estimation-error experiment
  /// (Fig. 6) measures.
  virtual double TruthFactor(Rng* rng) const {
    return bias_ * std::exp(rng->Normal(0.0, noise_));
  }

 protected:
  double bias_ = 1.0;
  double noise_ = 0.10;

 private:
  std::string name_;
  std::map<std::string, RelationStats> injected_;
};

/// PostgreSQL: centralized, disk-bound; cheap per-row CPU but scans pay the
/// single node's disk bandwidth. Never OOMs.
class PostgresSqlEngine : public SqlEngine {
 public:
  PostgresSqlEngine();
  double ScanSeconds(const RelationStats& input,
                     double selectivity) const override;
  double JoinSeconds(const RelationStats& left, const RelationStats& right,
                     const RelationStats& output) const override;
  double LoadSeconds(const RelationStats& input) const override;
};

/// MemSQL: distributed, memory-resident; very fast while the working set
/// fits the aggregate cluster memory, infeasible beyond it.
class MemSqlSqlEngine : public SqlEngine {
 public:
  explicit MemSqlSqlEngine(double memory_budget_gb = 12.0);
  double ScanSeconds(const RelationStats& input,
                     double selectivity) const override;
  double JoinSeconds(const RelationStats& left, const RelationStats& right,
                     const RelationStats& output) const override;
  double LoadSeconds(const RelationStats& input) const override;
  bool Feasible(double working_set_bytes) const override;

 private:
  double memory_budget_bytes_;
};

/// SparkSQL: distributed, disk-backed; per-operation job overhead plus the
/// exchange/sort-merge/broadcast cost model of MuSQLE §VI — the engine
/// prices each join as min(sort-merge, broadcast-hash) given the cluster
/// geometry.
class SparkSqlEngine : public SqlEngine {
 public:
  struct CostParams {
    int cores = 16;
    int partitions = 32;           // spark.sql.shuffle.partitions analog
    double row_read_seconds = 5e-8;    // Dr
    double row_write_seconds = 8e-8;   // Dw
    double row_hash_seconds = 3e-8;    // th
    double row_broadcast_seconds = 4e-7;  // tbr
    double cpu_compare_seconds = 2e-8;    // Ccpu
    double job_overhead_seconds = 1.5;
    double broadcast_threshold_rows = 5e5;
  };

  SparkSqlEngine() : SparkSqlEngine(CostParams()) {}
  explicit SparkSqlEngine(CostParams params);
  double ScanSeconds(const RelationStats& input,
                     double selectivity) const override;
  double JoinSeconds(const RelationStats& left, const RelationStats& right,
                     const RelationStats& output) const override;
  double LoadSeconds(const RelationStats& input) const override;

  /// Exposed pieces of the cost model (unit-tested directly).
  double ExchangeCost(const RelationStats& relation) const;
  double SortCost(const RelationStats& relation) const;
  double SortMergeJoinCost(const RelationStats& left,
                           const RelationStats& right,
                           const RelationStats& output) const;
  double BroadcastHashJoinCost(const RelationStats& small,
                               const RelationStats& large,
                               const RelationStats& output) const;

 private:
  double Rounds(double partitions) const;
  CostParams params_;
};

/// The engine fleet MuSQLE federates in the evaluation.
std::map<std::string, std::unique_ptr<SqlEngine>> MakeStandardSqlEngines();

}  // namespace ires::sql

#endif  // IRES_SQL_SQL_ENGINE_H_
