#include "sql/lowering.h"

#include <cstdio>

namespace ires::sql {

namespace {

// The standard federated fleet and the workflow engines hosting it. SparkSQL
// queries run inside the Spark engine; its tables live on HDFS.
struct EngineMapping {
  const char* sql_engine;
  const char* workflow_engine;
  const char* store;
};
constexpr EngineMapping kEngineMap[] = {
    {"PostgreSQL", "PostgreSQL", "PostgreSQL"},
    {"MemSQL", "MemSQL", "MemSQL"},
    {"SparkSQL", "Spark", "HDFS"},
};

const EngineMapping* FindMapping(const std::string& sql_engine) {
  for (const EngineMapping& m : kEngineMap) {
    if (sql_engine == m.sql_engine) return &m;
  }
  return nullptr;
}

const char* AlgorithmFor(SqlPlanNode::Kind kind) {
  switch (kind) {
    case SqlPlanNode::Kind::kScan: return "SqlScan";
    case SqlPlanNode::Kind::kJoin: return "SqlJoin";
    case SqlPlanNode::Kind::kMove: return "SqlMove";
  }
  return "SqlScan";
}

uint64_t Fnv1a(const std::string& text) {
  uint64_t hash = 1469598103934665603ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string TableDatasetName(const std::string& table) {
  return "sql_table_" + table;
}

}  // namespace

std::string QueryShape(const Query& query) {
  std::string out = "select";
  for (const ColumnRef& col : query.select) out += " " + col.ToString();
  if (query.select.empty()) out += " *";
  out += "|from";
  for (const std::string& table : query.tables) out += " " + table;
  out += "|join";
  for (const JoinPredicate& join : query.joins) {
    out += " " + join.left.ToString() + CompareOpToString(join.op) +
           join.right.ToString();
  }
  out += "|filter";
  // Literals are normalized away: `price < 100` and `price < 5000` are the
  // same shape (the cost model never reads the literal value).
  for (const FilterPredicate& filter : query.filters) {
    out += " " + filter.column.ToString() + CompareOpToString(filter.op) + "?";
  }
  return out;
}

uint64_t QueryShapeHash(const Query& query) {
  return Fnv1a(QueryShape(query));
}

std::string QueryShapeId(const Query& query) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "sqlq_%016llx",
                static_cast<unsigned long long>(QueryShapeHash(query)));
  return buf;
}

Result<std::string> WorkflowEngineFor(const std::string& sql_engine) {
  const EngineMapping* mapping = FindMapping(sql_engine);
  if (mapping == nullptr) {
    return Status::NotFound("no workflow engine hosts SQL engine '" +
                            sql_engine + "'");
  }
  return std::string(mapping->workflow_engine);
}

int EnsureSqlOperators(OperatorLibrary* library) {
  struct Shape {
    const char* algorithm;
    int inputs;
  };
  constexpr Shape kShapes[] = {
      {"SqlScan", 1}, {"SqlJoin", 2}, {"SqlMove", 1}};
  int added = 0;
  for (const EngineMapping& mapping : kEngineMap) {
    for (const Shape& shape : kShapes) {
      const std::string name =
          std::string(shape.algorithm) + "_" + mapping.workflow_engine;
      if (library->FindMaterializedByName(name) != nullptr) continue;
      MetadataTree meta;
      meta.Set("Constraints.OpSpecification.Algorithm.name", shape.algorithm);
      meta.Set("Constraints.Engine", mapping.workflow_engine);
      meta.Set("Constraints.Input.number", std::to_string(shape.inputs));
      meta.Set("Constraints.Output.number", "1");
      // No input store constraints: the federated plan already contains
      // every required SqlMove, so the DP planner must not inject moves of
      // its own on top.
      meta.Set("Constraints.Output0.Engine.FS", mapping.store);
      meta.Set("Constraints.Output0.type", "relation");
      if (library->AddMaterialized(MaterializedOperator(name, meta)).ok()) {
        ++added;
      }
    }
  }
  return added;
}

Status EnsureTableDataset(const Catalog& catalog, const std::string& table,
                          OperatorLibrary* library) {
  const std::string name = TableDatasetName(table);
  if (library->FindDatasetByName(name) != nullptr) return Status::OK();
  const TableDef* def = catalog.FindTable(table);
  if (def == nullptr) return Status::NotFound("table: " + table);
  // Replicated tables ("*") expose their HDFS copy as the canonical source.
  const EngineMapping* mapping = FindMapping(def->engine);
  const std::string store = mapping != nullptr ? mapping->store : "HDFS";
  const std::string sql_engine =
      mapping != nullptr ? def->engine : std::string("SparkSQL");
  MetadataTree meta;
  meta.Set("Constraints.Engine.FS", store);
  meta.Set("Constraints.type", "relation");
  meta.Set("Execution.path", "sql://" + sql_engine + "/" + table);
  Dataset dataset(name, meta);
  dataset.set_size_bytes(def->bytes());
  dataset.set_record_count(def->rows);
  return library->AddDataset(std::move(dataset));
}

Result<LoweredWorkflow> LowerSqlPlan(const Query& query, const SqlPlan& plan,
                                     const Catalog& catalog,
                                     OperatorLibrary* library) {
  if (plan.root < 0 || plan.nodes.empty()) {
    return Status::InvalidArgument("cannot lower an empty SQL plan");
  }
  LoweredWorkflow out;
  out.shape = QueryShape(query);
  out.shape_id = QueryShapeId(query);
  out.result_engine = plan.result_engine;
  out.new_registrations = EnsureSqlOperators(library);

  for (const SqlPlanNode& node : plan.nodes) {
    const std::string op_name =
        out.shape_id + "_n" + std::to_string(node.id);
    const std::string ds_name =
        out.shape_id + "_d" + std::to_string(node.id);
    IRES_ASSIGN_OR_RETURN(std::string engine, WorkflowEngineFor(node.engine));
    switch (node.kind) {
      case SqlPlanNode::Kind::kScan: ++out.scan_ops; break;
      case SqlPlanNode::Kind::kJoin: ++out.join_ops; break;
      case SqlPlanNode::Kind::kMove: ++out.move_ops; break;
    }

    // Per-instance abstract operator, engine-pinned to MuSQLE's choice.
    // First sighting of a shape registers them; later sightings find them
    // already present and leave the library version untouched.
    if (library->FindAbstractByName(op_name) == nullptr) {
      const int inputs =
          node.children.empty() ? 1 : static_cast<int>(node.children.size());
      MetadataTree meta;
      meta.Set("Constraints.OpSpecification.Algorithm.name",
               AlgorithmFor(node.kind));
      meta.Set("Constraints.Engine", engine);
      meta.Set("Constraints.Input.number", std::to_string(inputs));
      meta.Set("Constraints.Output.number", "1");
      IRES_RETURN_IF_ERROR(
          library->AddAbstract(AbstractOperator(op_name, meta)));
      ++out.new_registrations;
    }

    out.graph.AddOperator(op_name);
    if (node.children.empty()) {
      // Leaf scans and replication moves read the base table.
      if (node.table.empty()) {
        return Status::Internal("leaf plan node " + std::to_string(node.id) +
                                " names no table");
      }
      IRES_RETURN_IF_ERROR(EnsureTableDataset(catalog, node.table, library));
      const std::string table_ds = TableDatasetName(node.table);
      out.graph.AddDataset(table_ds);
      IRES_RETURN_IF_ERROR(out.graph.Connect(table_ds, op_name, 0));
    } else {
      for (size_t port = 0; port < node.children.size(); ++port) {
        // plan.nodes is in bottom-up extraction order: children always
        // precede their parent, so the child's dataset node already exists.
        const std::string child_ds =
            out.shape_id + "_d" + std::to_string(node.children[port]);
        IRES_RETURN_IF_ERROR(
            out.graph.Connect(child_ds, op_name, static_cast<int>(port)));
      }
    }
    out.graph.AddDataset(ds_name);
    IRES_RETURN_IF_ERROR(out.graph.Connect(op_name, ds_name, 0));
  }

  out.target = out.shape_id + "_d" + std::to_string(plan.root);
  IRES_RETURN_IF_ERROR(out.graph.SetTarget(out.target));
  return out;
}

}  // namespace ires::sql
