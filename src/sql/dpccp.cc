#include "sql/dpccp.h"

namespace ires::sql {

namespace {

// Neighborhood of a vertex set: union of members' adjacency, minus the set.
uint32_t Neighborhood(const std::vector<uint32_t>& adjacency, uint32_t set) {
  uint32_t out = 0;
  for (uint32_t rest = set; rest != 0; rest &= rest - 1) {
    out |= adjacency[__builtin_ctz(rest)];
  }
  return out & ~set;
}

// Enumerates connected supersets of `seed` grown only through vertices not
// in `excluded`, invoking `visit` on each (including `seed` itself is the
// caller's job). This is EnumerateCsgRec of the DPccp paper.
void EnumerateCsgRec(const std::vector<uint32_t>& adjacency, uint32_t seed,
                     uint32_t excluded,
                     const std::function<void(uint32_t)>& visit) {
  const uint32_t neighbors = Neighborhood(adjacency, seed) & ~excluded;
  if (neighbors == 0) return;
  // All non-empty subsets of the neighborhood, in subset-enumeration order.
  for (uint32_t sub = neighbors; sub != 0; sub = (sub - 1) & neighbors) {
    visit(seed | sub);
  }
  for (uint32_t sub = neighbors; sub != 0; sub = (sub - 1) & neighbors) {
    EnumerateCsgRec(adjacency, seed | sub, excluded | neighbors, visit);
  }
}

}  // namespace

void EnumerateCsgCmpPairs(
    const std::vector<uint32_t>& adjacency, int n,
    const std::function<void(uint32_t, uint32_t)>& emit) {
  // EnumerateCmp for one csg S1: complements are connected sets seeded at
  // neighbors of S1 with index above min(S1), grown away from the
  // "forbidden" prefix.
  auto enumerate_cmp = [&](uint32_t s1) {
    const int min_vertex = __builtin_ctz(s1);
    const uint32_t b_min = (1u << (min_vertex + 1)) - 1;  // B_{min(S1)}
    const uint32_t x = b_min | s1;
    const uint32_t neighbors = Neighborhood(adjacency, s1) & ~x;
    if (neighbors == 0) return;
    // Seeds in descending vertex order, as in the paper.
    for (int v = n - 1; v >= 0; --v) {
      const uint32_t bit = 1u << v;
      if ((neighbors & bit) == 0) continue;
      emit(s1, bit);
      // Grow the complement through vertices outside X and outside the
      // lower-ordered neighborhood seeds (B_v ∩ N).
      const uint32_t b_v = (1u << (v + 1)) - 1;
      EnumerateCsgRec(adjacency, bit, x | (b_v & neighbors),
                      [&](uint32_t s2) { emit(s1, s2); });
    }
  };

  for (int v = n - 1; v >= 0; --v) {
    const uint32_t seed = 1u << v;
    enumerate_cmp(seed);
    const uint32_t b_v = (1u << (v + 1)) - 1;
    EnumerateCsgRec(adjacency, seed, b_v,
                    [&](uint32_t s1) { enumerate_cmp(s1); });
  }
}

int CountConnectedSubgraphs(const std::vector<uint32_t>& adjacency, int n) {
  int count = 0;
  for (int v = n - 1; v >= 0; --v) {
    ++count;  // the singleton
    const uint32_t b_v = (1u << (v + 1)) - 1;
    EnumerateCsgRec(adjacency, 1u << v, b_v, [&](uint32_t) { ++count; });
  }
  return count;
}

}  // namespace ires::sql
