#include "sql/dpccp.h"

#include <utility>

#include "threading/task_scheduler.h"

namespace ires::sql {

namespace {

// Neighborhood of a vertex set: union of members' adjacency, minus the set.
uint32_t Neighborhood(const std::vector<uint32_t>& adjacency, uint32_t set) {
  uint32_t out = 0;
  for (uint32_t rest = set; rest != 0; rest &= rest - 1) {
    out |= adjacency[__builtin_ctz(rest)];
  }
  return out & ~set;
}

// Enumerates connected supersets of `seed` grown only through vertices not
// in `excluded`, invoking `visit` on each (including `seed` itself is the
// caller's job). This is EnumerateCsgRec of the DPccp paper.
void EnumerateCsgRec(const std::vector<uint32_t>& adjacency, uint32_t seed,
                     uint32_t excluded,
                     const std::function<void(uint32_t)>& visit) {
  const uint32_t neighbors = Neighborhood(adjacency, seed) & ~excluded;
  if (neighbors == 0) return;
  // All non-empty subsets of the neighborhood, in subset-enumeration order.
  for (uint32_t sub = neighbors; sub != 0; sub = (sub - 1) & neighbors) {
    visit(seed | sub);
  }
  for (uint32_t sub = neighbors; sub != 0; sub = (sub - 1) & neighbors) {
    EnumerateCsgRec(adjacency, seed | sub, excluded | neighbors, visit);
  }
}

// All csg-cmp-pairs whose csg grew from the start vertex `v` — one
// iteration of the serial outer loop. Independent of every other start
// vertex, which is what the parallel variant exploits.
void EnumerateForSeed(const std::vector<uint32_t>& adjacency, int n, int v,
                      const std::function<void(uint32_t, uint32_t)>& emit) {
  // EnumerateCmp for one csg S1: complements are connected sets seeded at
  // neighbors of S1 with index above min(S1), grown away from the
  // "forbidden" prefix.
  auto enumerate_cmp = [&](uint32_t s1) {
    const int min_vertex = __builtin_ctz(s1);
    const uint32_t b_min = (1u << (min_vertex + 1)) - 1;  // B_{min(S1)}
    const uint32_t x = b_min | s1;
    const uint32_t neighbors = Neighborhood(adjacency, s1) & ~x;
    if (neighbors == 0) return;
    // Seeds in descending vertex order, as in the paper.
    for (int w = n - 1; w >= 0; --w) {
      const uint32_t bit = 1u << w;
      if ((neighbors & bit) == 0) continue;
      emit(s1, bit);
      // Grow the complement through vertices outside X and outside the
      // lower-ordered neighborhood seeds (B_w ∩ N).
      const uint32_t b_w = (1u << (w + 1)) - 1;
      EnumerateCsgRec(adjacency, bit, x | (b_w & neighbors),
                      [&](uint32_t s2) { emit(s1, s2); });
    }
  };

  const uint32_t seed = 1u << v;
  enumerate_cmp(seed);
  const uint32_t b_v = (1u << (v + 1)) - 1;
  EnumerateCsgRec(adjacency, seed, b_v,
                  [&](uint32_t s1) { enumerate_cmp(s1); });
}

}  // namespace

void EnumerateCsgCmpPairs(
    const std::vector<uint32_t>& adjacency, int n,
    const std::function<void(uint32_t, uint32_t)>& emit) {
  for (int v = n - 1; v >= 0; --v) {
    EnumerateForSeed(adjacency, n, v, emit);
  }
}

void EnumerateCsgCmpPairsParallel(
    const std::vector<uint32_t>& adjacency, int n, TaskScheduler* scheduler,
    const std::function<void(uint32_t, uint32_t)>& emit) {
  if (scheduler == nullptr || n <= 1) {
    EnumerateCsgCmpPairs(adjacency, n, emit);
    return;
  }
  // One bucket per start vertex, filled concurrently; index i holds the
  // pairs of seed v = n-1-i, the i-th seed of the serial loop.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> buckets(
      static_cast<size_t>(n));
  ParallelFor(scheduler, static_cast<size_t>(n), [&](size_t i) {
    const int v = n - 1 - static_cast<int>(i);
    EnumerateForSeed(adjacency, n, v, [&](uint32_t s1, uint32_t s2) {
      buckets[i].emplace_back(s1, s2);
    });
  });
  // Replay in serial seed order — the concatenation is bit-identical to
  // what EnumerateCsgCmpPairs would have emitted.
  for (const auto& bucket : buckets) {
    for (const auto& [s1, s2] : bucket) emit(s1, s2);
  }
}

int CountConnectedSubgraphs(const std::vector<uint32_t>& adjacency, int n) {
  int count = 0;
  for (int v = n - 1; v >= 0; --v) {
    ++count;  // the singleton
    const uint32_t b_v = (1u << (v + 1)) - 1;
    EnumerateCsgRec(adjacency, 1u << v, b_v, [&](uint32_t) { ++count; });
  }
  return count;
}

}  // namespace ires::sql
