#ifndef IRES_SQL_MUSQLE_OPTIMIZER_H_
#define IRES_SQL_MUSQLE_OPTIMIZER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "sql/catalog.h"
#include "sql/sql_engine.h"
#include "sql/sql_parser.h"

namespace ires {
class TaskScheduler;
}  // namespace ires

namespace ires::sql {

/// One node of a multi-engine SQL execution plan.
struct SqlPlanNode {
  enum class Kind { kScan, kJoin, kMove };

  int id = -1;
  Kind kind = Kind::kScan;
  std::string engine;          // where the node runs / where data lands
  std::string table;           // scans: base table name
  std::vector<int> children;   // node ids (0 for scan, 1 for move, 2 join)
  RelationStats output;
  double seconds = 0.0;        // this node's estimated seconds
};

/// A complete multi-engine SQL plan.
struct SqlPlan {
  std::vector<SqlPlanNode> nodes;
  int root = -1;
  double total_seconds = 0.0;  // sum of node estimates
  std::string result_engine;

  std::string ToString() const;
  int CountKind(SqlPlanNode::Kind kind) const;
};

/// Optimization-time accounting mirroring MuSQLE Figures 4-5: how much of
/// the optimization was plan enumeration versus external engine API calls.
struct OptimizerStats {
  int explain_calls = 0;   // JoinSeconds/ScanSeconds estimates requested
  int inject_calls = 0;    // statistics injections for shipped temps
  int load_cost_calls = 0; // getLoadCost queries
  double enumeration_wall_seconds = 0.0;
  /// Modeled API latency (per-call round-trips; see DESIGN.md): the wall
  /// clock an out-of-process EXPLAIN/inject endpoint would have added.
  double modeled_explain_seconds = 0.0;
  double modeled_inject_seconds = 0.0;
};

/// MuSQLE's location-aware join-order optimizer: DPccp-style dynamic
/// programming over connected subgraphs of the join graph, with one dpTable
/// row per (subgraph, engine). emitCsgCmp considers executing every
/// csg-cmp-pair's join on every engine, shipping whichever side is
/// elsewhere (move + injectStats) — Algorithm 1 of the MuSQLE paper.
class MusqleOptimizer {
 public:
  /// How csg-cmp pairs are generated.
  enum class Enumeration {
    /// Submask enumeration with connectivity filters (simple, O(3^n)).
    kSubmask,
    /// DPccp neighborhood expansion (Moerkotte & Neumann): emits each pair
    /// exactly once without touching disconnected subsets — the algorithm
    /// the MuSQLE paper builds on.
    kDpccp,
    /// Left-deep trees only (one side of every join is a base relation) —
    /// the classic System-R restriction, kept as an ablation baseline:
    /// cheaper enumeration, potentially worse plans on bushy-friendly
    /// queries.
    kLeftDeep,
  };

  struct Options {
    /// Modeled per-call latency of external estimation endpoints.
    double explain_call_seconds = 2e-3;
    double inject_call_seconds = 5e-4;
    Enumeration enumeration = Enumeration::kDpccp;
    /// When set, kDpccp enumeration fans out across this scheduler
    /// (per-seed buckets, replayed in serial order — plans stay
    /// bit-identical to the serial enumeration). Null keeps everything on
    /// the calling thread.
    TaskScheduler* scheduler = nullptr;
  };

  MusqleOptimizer(const Catalog* catalog,
                  const std::map<std::string, std::unique_ptr<SqlEngine>>*
                      engines)
      : MusqleOptimizer(catalog, engines, Options()) {}
  MusqleOptimizer(const Catalog* catalog,
                  const std::map<std::string, std::unique_ptr<SqlEngine>>*
                      engines,
                  Options options);

  /// Optimizes a parsed query. Fails when a referenced table/column is
  /// unknown or the join graph is disconnected (cartesian products are not
  /// enumerated).
  Result<SqlPlan> Optimize(const Query& query,
                           OptimizerStats* stats = nullptr) const;

  /// Baseline: run the whole query on `engine_name`, first shipping in
  /// every table that is not already resident. Fails (ResourceExhausted)
  /// when the engine cannot hold the working set — the "OOM" markers of
  /// MuSQLE Figures 9-10.
  Result<SqlPlan> PlanSingleEngine(const Query& query,
                                   const std::string& engine_name) const;

  /// Cardinality model: estimated output rows of joining the given subset
  /// of the query's tables (with filters applied). Exposed for tests.
  Result<RelationStats> EstimateSubset(const Query& query,
                                       uint32_t table_mask) const;

 private:
  const Catalog* catalog_;
  const std::map<std::string, std::unique_ptr<SqlEngine>>* engines_;
  Options options_;
};

/// Outcome of simulating a plan execution.
struct SqlExecutionOutcome {
  /// Total engine-busy seconds (sum over nodes) — what a serial executor
  /// would take and what resource accounting charges.
  double busy_seconds = 0.0;
  /// End-to-end latency when independent subtrees run concurrently (Spark
  /// as the orchestrator overlaps the per-engine subqueries).
  double makespan_seconds = 0.0;
};

/// Simulates executing a plan: each node's estimate is scaled by its
/// engine's ground-truth factor (systematic bias x noise); a node starts
/// when all its children finished.
SqlExecutionOutcome SimulateSqlPlan(
    const SqlPlan& plan,
    const std::map<std::string, std::unique_ptr<SqlEngine>>& engines,
    Rng* rng);

/// Convenience: the busy-seconds of SimulateSqlPlan (the metric the TPC-H
/// figures report).
double ExecutePlanGroundTruth(
    const SqlPlan& plan,
    const std::map<std::string, std::unique_ptr<SqlEngine>>& engines,
    Rng* rng);

}  // namespace ires::sql

#endif  // IRES_SQL_MUSQLE_OPTIMIZER_H_
