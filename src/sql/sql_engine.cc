#include "sql/sql_engine.h"

#include <algorithm>
#include <cmath>

namespace ires::sql {

// ---------------------------------------------------------------- Postgres
PostgresSqlEngine::PostgresSqlEngine() : SqlEngine("PostgreSQL") {
  bias_ = 1.25;  // PG's page-cost units translate loosely to wall time
  noise_ = 0.12;
}

double PostgresSqlEngine::ScanSeconds(const RelationStats& input,
                                      double selectivity) const {
  // Sequential scan at single-node disk bandwidth; selective predicates cut
  // the per-row CPU but not the scan itself.
  return 0.05 + input.bytes() / 90e6 + input.rows * selectivity * 2e-7;
}

double PostgresSqlEngine::JoinSeconds(const RelationStats& left,
                                      const RelationStats& right,
                                      const RelationStats& output) const {
  // Hash join: build + probe + output materialization, disk-bound for big
  // inputs because one node does all the work.
  return 0.05 + (left.bytes() + right.bytes()) / 90e6 +
         (left.rows + right.rows) * 1.5e-6 + output.rows * 2e-7;
}

double PostgresSqlEngine::LoadSeconds(const RelationStats& input) const {
  return 0.2 + input.bytes() / 40e6;  // COPY over a single link
}

// ------------------------------------------------------------------ MemSQL
MemSqlSqlEngine::MemSqlSqlEngine(double memory_budget_gb)
    : SqlEngine("MemSQL"), memory_budget_bytes_(memory_budget_gb * 1e9) {
  bias_ = 1.1;
  noise_ = 0.08;
}

double MemSqlSqlEngine::ScanSeconds(const RelationStats& input,
                                    double selectivity) const {
  (void)selectivity;
  return 0.05 + input.rows * 5e-8;
}

double MemSqlSqlEngine::JoinSeconds(const RelationStats& left,
                                    const RelationStats& right,
                                    const RelationStats& output) const {
  return 0.05 + (left.rows + right.rows) * 2e-7 + output.rows * 1e-7;
}

double MemSqlSqlEngine::LoadSeconds(const RelationStats& input) const {
  return 0.1 + input.bytes() / 100e6;
}

bool MemSqlSqlEngine::Feasible(double working_set_bytes) const {
  return working_set_bytes <= memory_budget_bytes_;
}

// ---------------------------------------------------------------- SparkSQL
SparkSqlEngine::SparkSqlEngine(CostParams params)
    : SqlEngine("SparkSQL"), params_(params) {
  bias_ = 1.15;
  noise_ = 0.12;
}

double SparkSqlEngine::Rounds(double partitions) const {
  return std::ceil(partitions / static_cast<double>(params_.cores));
}

double SparkSqlEngine::ExchangeCost(const RelationStats& relation) const {
  // Cexch = R/Part * (Ccpu + Dw) * Rounds(Part): every row is hashed and
  // rewritten to its target partition; tasks run cores-at-a-time.
  const double partitions = params_.partitions;
  return relation.rows / partitions *
         (params_.cpu_compare_seconds + params_.row_write_seconds) *
         Rounds(partitions) * partitions / params_.cores;
}

double SparkSqlEngine::SortCost(const RelationStats& relation) const {
  const double per_partition =
      std::max(1.0, relation.rows / params_.partitions);
  return per_partition * std::log2(per_partition + 1) *
         params_.cpu_compare_seconds * Rounds(params_.partitions);
}

double SparkSqlEngine::SortMergeJoinCost(const RelationStats& left,
                                         const RelationStats& right,
                                         const RelationStats& output) const {
  // Shuffle + sort both sides, then a linear merge per partition. (The
  // published formula multiplies R(s)·R(t) in the merge term; we use the
  // linear R(s)+R(t) form of the classic merge phase — see DESIGN.md.)
  const double merge = (left.rows + right.rows + output.rows) /
                       params_.cores * params_.cpu_compare_seconds *
                       params_.cores;  // all partitions merged in rounds
  return ExchangeCost(left) + SortCost(left) + ExchangeCost(right) +
         SortCost(right) + merge +
         output.rows * params_.row_write_seconds;
}

double SparkSqlEngine::BroadcastHashJoinCost(
    const RelationStats& small, const RelationStats& large,
    const RelationStats& output) const {
  // Driver hashes + broadcasts the small side, then every partition of the
  // large side probes locally.
  const double broadcast =
      small.rows * (params_.row_hash_seconds + params_.row_broadcast_seconds);
  const double probe = large.rows / params_.cores *
                       params_.cpu_compare_seconds * params_.cores /
                       params_.cores;
  return broadcast + probe + output.rows * params_.row_write_seconds;
}

double SparkSqlEngine::ScanSeconds(const RelationStats& input,
                                   double selectivity) const {
  (void)selectivity;
  return params_.job_overhead_seconds +
         input.rows * params_.row_read_seconds / params_.cores *
             params_.cores +
         input.bytes() / (params_.cores * 30e6);
}

double SparkSqlEngine::JoinSeconds(const RelationStats& left,
                                   const RelationStats& right,
                                   const RelationStats& output) const {
  const RelationStats& small = left.rows <= right.rows ? left : right;
  const RelationStats& large = left.rows <= right.rows ? right : left;
  double cost = SortMergeJoinCost(left, right, output);
  if (small.rows <= params_.broadcast_threshold_rows) {
    cost = std::min(cost, BroadcastHashJoinCost(small, large, output));
  }
  return params_.job_overhead_seconds + cost;
}

double SparkSqlEngine::LoadSeconds(const RelationStats& input) const {
  return 0.5 + input.bytes() / 150e6;  // parallel ingest into HDFS
}

std::map<std::string, std::unique_ptr<SqlEngine>> MakeStandardSqlEngines() {
  std::map<std::string, std::unique_ptr<SqlEngine>> engines;
  engines["PostgreSQL"] = std::make_unique<PostgresSqlEngine>();
  engines["MemSQL"] = std::make_unique<MemSqlSqlEngine>();
  engines["SparkSQL"] = std::make_unique<SparkSqlEngine>();
  return engines;
}

}  // namespace ires::sql
