#include "telemetry/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/strings.h"

namespace ires {

namespace {

/// Atomic add for doubles without C++20 fetch_add(double) (not universally
/// available in shipped libstdc++): a plain CAS loop.
void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// HELP text escaping per the exposition format: only `\` and newline are
/// escaped (quotes are legal in help text, unlike in label values).
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// `{k1="v1",k2="v2"}`, or "" for the unlabeled child.
std::string RenderLabels(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + EscapeLabelValue(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

/// Labels plus one extra pair — used for the histogram `le` buckets.
std::string RenderLabelsWith(const LabelSet& labels, const std::string& key,
                             const std::string& value) {
  LabelSet extended = labels;
  extended.emplace_back(key, value);
  return RenderLabels(extended);
}

std::string FormatDouble(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

LabelSet Sorted(LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

void Gauge::Add(double delta) { AtomicAdd(&value_, delta); }

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  // Prometheus `le` semantics: a value equal to a bound belongs to that
  // bound's bucket, so pick the first bound >= value.
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

double Histogram::Quantile(double q) const {
  const Snapshot snap = snapshot();
  // Rank over the per-bucket counts, not `snap.count`: concurrent Observe
  // calls can leave the aggregate ahead of the buckets momentarily.
  uint64_t total = 0;
  for (uint64_t c : snap.counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < snap.counts.size(); ++i) {
    cumulative += snap.counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= snap.bounds.size()) {
      // +Inf bucket: clamp to the largest finite bound.
      return snap.bounds.empty() ? 0.0 : snap.bounds.back();
    }
    const double upper = snap.bounds[i];
    const double lower = i == 0 ? 0.0 : snap.bounds[i - 1];
    const uint64_t in_bucket = snap.counts[i];
    if (in_bucket == 0) return upper;
    const double before = static_cast<double>(cumulative - in_bucket);
    const double fraction = (rank - before) / static_cast<double>(in_bucket);
    return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
  }
  return snap.bounds.empty() ? 0.0 : snap.bounds.back();
}

uint64_t Histogram::CountAtOrBelow(double value) const {
  const Snapshot snap = snapshot();
  uint64_t cumulative = 0;
  for (size_t i = 0; i < snap.bounds.size(); ++i) {
    if (snap.bounds[i] > value) break;
    cumulative += snap.counts[i];
  }
  return cumulative;
}

const std::vector<double>& MetricsRegistry::DefaultLatencyBuckets() {
  static const std::vector<double> kBuckets = {
      0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
      0.25,  0.5,    1.0,   2.5,  5.0,   10.0, 60.0};
  return kBuckets;
}

MetricsRegistry::Family* MetricsRegistry::GetFamily(const std::string& name,
                                                    const std::string& help,
                                                    Type type) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.type = type;
    family.help = help;
    it = families_.emplace(name, std::move(family)).first;
  } else if (it->second.type != type) {
    return nullptr;  // same name, different type: refuse
  }
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const LabelSet& labels) {
  MutexLock lock(mu_);
  Family* family = GetFamily(name, help, Type::kCounter);
  if (family == nullptr) return nullptr;
  auto& child = family->counters[Sorted(labels)];
  if (!child) child = std::make_unique<Counter>();
  return child.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const LabelSet& labels) {
  MutexLock lock(mu_);
  Family* family = GetFamily(name, help, Type::kGauge);
  if (family == nullptr) return nullptr;
  auto& child = family->gauges[Sorted(labels)];
  if (!child) child = std::make_unique<Gauge>();
  return child.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         const LabelSet& labels,
                                         std::vector<double> bounds) {
  MutexLock lock(mu_);
  Family* family = GetFamily(name, help, Type::kHistogram);
  if (family == nullptr) return nullptr;
  if (family->bounds.empty()) {
    family->bounds =
        bounds.empty() ? DefaultLatencyBuckets() : std::move(bounds);
  }
  auto& child = family->histograms[Sorted(labels)];
  if (!child) child = std::make_unique<Histogram>(family->bounds);
  return child.get();
}

std::string MetricsRegistry::RenderPrometheus() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + " " + EscapeHelp(family.help) + "\n";
    switch (family.type) {
      case Type::kCounter: {
        out += "# TYPE " + name + " counter\n";
        for (const auto& [labels, counter] : family.counters) {
          out += name + RenderLabels(labels) + " " +
                 std::to_string(counter->Value()) + "\n";
        }
        break;
      }
      case Type::kGauge: {
        out += "# TYPE " + name + " gauge\n";
        for (const auto& [labels, gauge] : family.gauges) {
          out += name + RenderLabels(labels) + " " +
                 FormatDouble(gauge->Value()) + "\n";
        }
        break;
      }
      case Type::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        for (const auto& [labels, histogram] : family.histograms) {
          const Histogram::Snapshot snap = histogram->snapshot();
          uint64_t cumulative = 0;
          for (size_t i = 0; i < snap.counts.size(); ++i) {
            cumulative += snap.counts[i];
            const std::string le = i < snap.bounds.size()
                                       ? FormatDouble(snap.bounds[i])
                                       : "+Inf";
            out += name + "_bucket" + RenderLabelsWith(labels, "le", le) +
                   " " + std::to_string(cumulative) + "\n";
          }
          out += name + "_sum" + RenderLabels(labels) + " " +
                 FormatDouble(snap.sum) + "\n";
          out += name + "_count" + RenderLabels(labels) + " " +
                 std::to_string(snap.count) + "\n";
        }
        break;
      }
    }
  }
  return out;
}

void MetricsRegistry::VisitCounters(
    const std::string& name,
    const std::function<void(const LabelSet&, uint64_t)>& fn) const {
  MutexLock lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end() || it->second.type != Type::kCounter) return;
  for (const auto& [labels, counter] : it->second.counters) {
    fn(labels, counter->Value());
  }
}

void MetricsRegistry::VisitHistograms(
    const std::string& name,
    const std::function<void(const LabelSet&, const Histogram&)>& fn) const {
  MutexLock lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end() || it->second.type != Type::kHistogram) return;
  for (const auto& [labels, histogram] : it->second.histograms) {
    fn(labels, *histogram);
  }
}

std::string MetricsRegistry::RenderJson() const {
  MutexLock lock(mu_);
  std::string out = "{";
  bool first_family = true;
  auto label_key = [](const LabelSet& labels) {
    if (labels.empty()) return std::string("_");
    std::string key;
    for (size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) key += ",";
      key += labels[i].first + "=" + labels[i].second;
    }
    // Label values are arbitrary strings; without escaping, a quote or
    // backslash in one would corrupt the whole JSON document.
    return JsonEscape(key);
  };
  for (const auto& [name, family] : families_) {
    if (!first_family) out += ",";
    first_family = false;
    out += "\"" + name + "\":{";
    bool first_child = true;
    switch (family.type) {
      case Type::kCounter:
        for (const auto& [labels, counter] : family.counters) {
          if (!first_child) out += ",";
          first_child = false;
          out += "\"" + label_key(labels) +
                 "\":" + std::to_string(counter->Value());
        }
        break;
      case Type::kGauge:
        for (const auto& [labels, gauge] : family.gauges) {
          if (!first_child) out += ",";
          first_child = false;
          out += "\"" + label_key(labels) +
                 "\":" + FormatDouble(gauge->Value());
        }
        break;
      case Type::kHistogram:
        for (const auto& [labels, histogram] : family.histograms) {
          if (!first_child) out += ",";
          first_child = false;
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        "{\"count\":%llu,\"sum\":%.6g,\"p50\":%.6g,"
                        "\"p95\":%.6g,\"p99\":%.6g}",
                        static_cast<unsigned long long>(histogram->Count()),
                        histogram->Sum(), histogram->Quantile(0.5),
                        histogram->Quantile(0.95), histogram->Quantile(0.99));
          out += "\"" + label_key(labels) + "\":" + buf;
        }
        break;
    }
    out += "}";
  }
  out += "}";
  return out;
}

}  // namespace ires
