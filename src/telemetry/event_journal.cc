#include "telemetry/event_journal.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>

#include "common/strings.h"

namespace ires {

namespace {

struct KindName {
  EventKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {EventKind::kAdmissionAccept, "admission_accept"},
    {EventKind::kAdmissionReject, "admission_reject"},
    {EventKind::kPlanCacheHit, "plan_cache_hit"},
    {EventKind::kPlanCacheMiss, "plan_cache_miss"},
    {EventKind::kPlanChosen, "plan_chosen"},
    {EventKind::kStepStart, "step_start"},
    {EventKind::kStepRetry, "step_retry"},
    {EventKind::kStragglerKill, "straggler_kill"},
    {EventKind::kChaosInject, "chaos_inject"},
    {EventKind::kBreakerTrip, "breaker_trip"},
    {EventKind::kBreakerState, "breaker_state"},
    {EventKind::kReplan, "replan"},
    {EventKind::kJobFailed, "job_failed"},
    {EventKind::kTaskSpan, "task_span"},
    {EventKind::kTaskRejected, "task_rejected"},
    {EventKind::kReplicaState, "replica_state"},
    {EventKind::kJobFailover, "job_failover"},
    {EventKind::kJournalFence, "journal_fence"},
    {EventKind::kJournalTorn, "journal_torn"},
};

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* EventKindName(EventKind kind) {
  for (const KindName& entry : kKindNames) {
    if (entry.kind == kind) return entry.name;
  }
  return "?";
}

bool ParseEventKind(const std::string& name, EventKind* out) {
  for (const KindName& entry : kKindNames) {
    if (name == entry.name) {
      *out = entry.kind;
      return true;
    }
  }
  return false;
}

std::string EventToJson(const JournalEvent& event) {
  char head[96];
  std::snprintf(head, sizeof(head), "{\"seq\":%llu,\"t\":%.6f,\"kind\":\"",
                static_cast<unsigned long long>(event.seq),
                event.wall_seconds);
  std::string out = std::string(head) + EventKindName(event.kind) + "\"";
  if (!event.job.empty()) out += ",\"job\":\"" + JsonEscape(event.job) + "\"";
  if (event.step >= 0) out += ",\"step\":" + std::to_string(event.step);
  if (!event.engine.empty()) {
    out += ",\"engine\":\"" + JsonEscape(event.engine) + "\"";
  }
  if (!event.code.empty()) {
    out += ",\"code\":\"" + JsonEscape(event.code) + "\"";
  }
  if (event.value != 0.0) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), ",\"value\":%.6g", event.value);
    out += buf;
  }
  if (!event.detail.empty()) {
    out += ",\"detail\":\"" + JsonEscape(event.detail) + "\"";
  }
  out += "}";
  return out;
}

std::string EventsToJson(const std::vector<JournalEvent>& events) {
  std::string out = "[";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out += ",";
    out += EventToJson(events[i]);
  }
  out += "]";
  return out;
}

namespace {
EventJournal::Options SanitizeOptions(EventJournal::Options options) {
  if (options.shards == 0) options.shards = 1;
  if (options.capacity_per_shard == 0) options.capacity_per_shard = 1;
  return options;
}
}  // namespace

EventJournal::EventJournal(Options options)
    : options_(SanitizeOptions(options)) {
  shards_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->ring.reserve(options_.capacity_per_shard);
    shards_.push_back(std::move(shard));
  }
}

EventJournal::Shard& EventJournal::ShardForThisThread() {
  const size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      shards_.size();
  return *shards_[index];
}

void EventJournal::Append(JournalEvent event) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  event.wall_seconds = NowSeconds();
  Shard& shard = ShardForThisThread();
  MutexLock lock(shard.mu);
  // The sequence number is drawn under the shard mutex, so ring order and
  // sequence order agree within a shard (strict per-shard monotonicity) and
  // the global counter still totally orders events across shards.
  event.seq = next_seq_.fetch_add(1, std::memory_order_acq_rel) + 1;
  ++shard.appended;
  if (shard.ring.size() < options_.capacity_per_shard) {
    shard.ring.push_back(std::move(event));
  } else {
    shard.ring[shard.next] = std::move(event);
    ++shard.dropped;
  }
  shard.next = (shard.next + 1) % options_.capacity_per_shard;
}

std::vector<JournalEvent> EventJournal::Query(const Filter& filter) const {
  std::vector<JournalEvent> out;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    for (const JournalEvent& event : shard->ring) {
      if (event.seq <= filter.since_seq) continue;
      if (!filter.job.empty() && event.job != filter.job) continue;
      if (filter.has_kind && event.kind != filter.kind) continue;
      out.push_back(event);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const JournalEvent& a, const JournalEvent& b) {
              return a.seq < b.seq;
            });
  if (filter.limit > 0 && out.size() > filter.limit) {
    out.erase(out.begin(),
              out.begin() + static_cast<ptrdiff_t>(out.size() - filter.limit));
  }
  return out;
}

EventJournal::Stats EventJournal::stats() const {
  Stats stats;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    stats.appended += shard->appended;
    stats.dropped += shard->dropped;
  }
  return stats;
}

void JournalWriter::Emit(EventKind kind, int step, std::string engine,
                         std::string code, double value,
                         std::string detail) const {
  if (journal_ == nullptr) return;
  JournalEvent event;
  event.kind = kind;
  event.job = job_;
  event.step = step;
  event.engine = std::move(engine);
  event.code = std::move(code);
  event.value = value;
  event.detail = std::move(detail);
  journal_->Append(std::move(event));
}

}  // namespace ires
