#ifndef IRES_TELEMETRY_METRICS_REGISTRY_H_
#define IRES_TELEMETRY_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ires {

/// One metric's label set, e.g. {{"engine","Spark"},{"kind","operator"}}.
/// Registration sorts the pairs by key so equivalent sets compare equal.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing count (events, bytes, errors). Increments are a
/// single relaxed atomic add — safe and cheap from any thread.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time value that can go up and down (queue depth, active jobs).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bucket bounds in
/// ascending order; one implicit +Inf bucket catches the rest. Observations
/// touch two atomics (bucket + count) plus a CAS loop for the sum, so the
/// hot path never takes a lock. Quantiles are estimated by linear
/// interpolation inside the bucket holding the target rank — the usual
/// Prometheus `histogram_quantile` semantics, computed server-side.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  struct Snapshot {
    std::vector<double> bounds;    // finite upper bounds
    std::vector<uint64_t> counts;  // per-bucket counts, bounds.size() + 1
    uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot snapshot() const;

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Estimated value at quantile `q` in [0,1] (0 when empty). The +Inf
  /// bucket clamps to the largest finite bound.
  double Quantile(double q) const;

  /// Observations that fell into buckets whose upper bound is <= `value`
  /// (Prometheus `le` semantics) — how the SLO layer counts "good" requests
  /// against a latency threshold without a second recording path. `value`
  /// should be one of the bucket bounds; anything between bounds rounds
  /// down to the previous bound.
  uint64_t CountAtOrBelow(double value) const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// The process's metric catalogue: named families of counters, gauges and
/// histograms, each family fanning out into children keyed by label set.
/// Get* registers on first use and returns a stable pointer that callers
/// cache and hit lock-free; the registry mutex guards only registration and
/// rendering. Returns nullptr when `name` is already registered as a
/// different metric type (a programming error surfaced gently).
///
/// Naming scheme (see DESIGN.md "Observability"): `ires_<subsystem>_<what>`
/// with `_total` for counters and `_seconds` for time histograms; label
/// values must come from bounded sets (routes, engines, states — never job
/// or trace ids).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help,
                      const LabelSet& labels = {}) EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const LabelSet& labels = {}) EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          const LabelSet& labels = {},
                          std::vector<double> bounds = {}) EXCLUDES(mu_);

  /// Prometheus text exposition format, families sorted by name:
  ///   # HELP name help
  ///   # TYPE name counter|gauge|histogram
  ///   name{label="value"} 42
  /// Histograms render cumulative `_bucket{le=...}`, `_sum` and `_count`.
  std::string RenderPrometheus() const EXCLUDES(mu_);

  /// The same snapshot as a JSON object keyed by metric name — what the
  /// bench harness dumps into BENCH_telemetry.json for run-over-run diffs.
  std::string RenderJson() const EXCLUDES(mu_);

  /// Visits every child of the counter family `name` (no-op when absent or
  /// not a counter family). The SLO layer uses this to aggregate
  /// `ires_http_requests_total` across routes/codes without owning a
  /// parallel data path. Don't call registry methods from `fn` (the
  /// registry mutex is held).
  void VisitCounters(const std::string& name,
                     const std::function<void(const LabelSet&, uint64_t)>& fn)
      const EXCLUDES(mu_);

  /// Histogram-family analogue of VisitCounters.
  void VisitHistograms(const std::string& name,
                       const std::function<void(const LabelSet&,
                                                const Histogram&)>& fn) const
      EXCLUDES(mu_);

  /// Latency buckets (seconds) used when GetHistogram gets no bounds:
  /// 1ms .. 60s, roughly exponential.
  static const std::vector<double>& DefaultLatencyBuckets();

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Family {
    Type type = Type::kCounter;
    std::string help;
    std::vector<double> bounds;  // histograms only
    std::map<LabelSet, std::unique_ptr<Counter>> counters;
    std::map<LabelSet, std::unique_ptr<Gauge>> gauges;
    std::map<LabelSet, std::unique_ptr<Histogram>> histograms;
  };

  Family* GetFamily(const std::string& name, const std::string& help,
                    Type type) REQUIRES(mu_);

  mutable Mutex mu_{LockRank::kMetricsRegistry, "metrics.registry"};
  std::map<std::string, Family> families_ GUARDED_BY(mu_);
};

}  // namespace ires

#endif  // IRES_TELEMETRY_METRICS_REGISTRY_H_
