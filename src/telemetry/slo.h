#ifndef IRES_TELEMETRY_SLO_H_
#define IRES_TELEMETRY_SLO_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "telemetry/metrics_registry.h"

namespace ires {

/// One declarative service-level objective over the normalized-route
/// request metrics the REST layer already records. Two shapes:
///   - latency SLO (`latency_threshold_seconds > 0`): a request is good
///     when it completed within the threshold, counted from the
///     `ires_http_request_seconds` histogram buckets;
///   - availability SLO (`latency_threshold_seconds == 0`): a request is
///     good when its response code was not 5xx, counted from
///     `ires_http_requests_total`.
/// Empty `method`/`route` match every child, so one spec can cover a single
/// endpoint or the whole API surface.
struct SloSpec {
  std::string name;      // stable id, e.g. "dag-execute-latency"
  std::string workload;  // workload class: "dag", "sql" or "all"
  std::string method;    // "POST"; empty = any method
  std::string route;     // normalized route; empty = any route
  double latency_threshold_seconds = 0.0;  // 0 = availability SLO
  double objective = 0.99;                 // target good fraction, (0,1)
};

/// Multi-window burn-rate monitor. Each evaluation snapshots cumulative
/// (good, total) per SLO from the metrics registry, appends it to a
/// rate-limited history, and computes for every window
///
///   burn_rate = (bad_in_window / total_in_window) / (1 - objective)
///
/// — the Google-SRE burn-rate formulation: 1.0 means the error budget is
/// being spent exactly at the rate that exhausts it by the period's end;
/// an SLO is *burning* when every window that saw traffic burns above 1
/// (the multi-window AND keeps one slow request from flapping healthz).
///
/// Thread-safe; the clock is injectable so tests can march time forward
/// deterministically.
class SloMonitor {
 public:
  struct Options {
    std::vector<double> windows_seconds = {60.0, 600.0};
    /// Minimum spacing between stored history samples; evaluations inside
    /// the interval reuse the last stored baseline.
    double min_sample_interval_seconds = 1.0;
  };

  using Clock = std::function<double()>;  // monotonic seconds

  explicit SloMonitor(MetricsRegistry* metrics);
  SloMonitor(MetricsRegistry* metrics, Options options,
             Clock clock = Clock());

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  void AddSlo(SloSpec spec) EXCLUDES(mu_);

  struct WindowStatus {
    double window_seconds = 0.0;
    uint64_t total = 0;  // requests observed inside the window
    uint64_t bad = 0;
    double burn_rate = 0.0;
    bool has_traffic = false;
  };

  struct SloStatus {
    SloSpec spec;
    uint64_t lifetime_total = 0;
    uint64_t lifetime_good = 0;
    double compliance = 1.0;  // lifetime good fraction
    std::vector<WindowStatus> windows;
    bool burning = false;
  };

  /// Samples current counts, updates burn-rate gauges, returns per-SLO
  /// status in registration order.
  std::vector<SloStatus> Evaluate() EXCLUDES(mu_);

  /// Names of SLOs currently burning (convenience over Evaluate).
  std::vector<std::string> Burning() EXCLUDES(mu_);

  /// The healthz "slo" object: every SLO's objective, compliance and
  /// per-window burn rates plus the burning list.
  std::string ToJson() EXCLUDES(mu_);

  const Options& options() const { return options_; }

 private:
  struct Sample {
    double t = 0.0;
    uint64_t good = 0;
    uint64_t total = 0;
  };

  struct SloState {
    SloSpec spec;
    std::deque<Sample> history;
  };

  /// Cumulative (good, total) for `spec` from the registry, lock-free with
  /// respect to mu_ (the registry has its own mutex).
  void Collect(const SloSpec& spec, uint64_t* good, uint64_t* total) const;

  double Now() const;

  MetricsRegistry* metrics_;
  Options options_;
  Clock clock_;

  /// kSloMonitor < kMetricsRegistry: Evaluate visits the registry and
  /// updates burn-rate gauges while holding mu_.
  mutable Mutex mu_{LockRank::kSloMonitor, "slo.monitor"};
  std::vector<SloState> slos_ GUARDED_BY(mu_);
};

}  // namespace ires

#endif  // IRES_TELEMETRY_SLO_H_
