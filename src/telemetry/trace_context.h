#ifndef IRES_TELEMETRY_TRACE_CONTEXT_H_
#define IRES_TELEMETRY_TRACE_CONTEXT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ires {

/// One recorded span: a named interval on one of the trace's timelines,
/// with optional string arguments (engine, cache outcome, error, ...).
struct TraceSpan {
  uint64_t id = 0;
  std::string name;      // e.g. "job.queue_wait", "step.LineCount_Spark"
  std::string category;  // span taxonomy: job | plan | step | move | model
  int timeline = 1;      // rendered as the Chrome trace `tid`
  double start_us = 0.0;
  double duration_us = -1.0;  // <0 while the span is still open
  std::vector<std::pair<std::string, std::string>> args;

  bool finished() const { return duration_us >= 0.0; }
};

/// Per-job span recorder, created at submission and threaded through
/// planning and execution. All methods are thread-safe: the worker thread
/// appends spans while REST readers render concurrently.
///
/// Two timelines share one trace:
///  - kWallTimeline: wall-clock spans (queue wait, cache lookup, DP
///    planning, execution attempt, model refinement), microseconds since
///    the context was created.
///  - kSimTimeline: the enforcer's discrete-event timeline (per-step
///    enforcement and data movement), microseconds of *simulated* time.
///
/// ToChromeTraceJson() renders both as Chrome trace-event JSON (load it in
/// chrome://tracing or Perfetto): complete "X" events on two named threads
/// of one process, so the monitoring UI gets the paper's per-step Gantt and
/// the serving-layer latency breakdown in a single document.
class TraceContext {
 public:
  static constexpr int kWallTimeline = 1;
  static constexpr int kSimTimeline = 2;

  explicit TraceContext(std::string trace_id);

  const std::string& trace_id() const { return trace_id_; }

  /// Microseconds of wall clock since this context was created.
  double ElapsedUs() const;

  /// Opens a wall-clock span now; EndSpan closes it. Returns the span id.
  uint64_t BeginSpan(const std::string& name, const std::string& category)
      EXCLUDES(mu_);
  void EndSpan(uint64_t span_id,
               std::vector<std::pair<std::string, std::string>> args = {})
      EXCLUDES(mu_);

  /// Records an already-measured interval (explicit start/duration in
  /// microseconds on `timeline`). Used for simulated-time step spans and
  /// for spans whose bounds were captured outside the context.
  void AddSpan(const std::string& name, const std::string& category,
               int timeline, double start_us, double duration_us,
               std::vector<std::pair<std::string, std::string>> args = {})
      EXCLUDES(mu_);

  /// Copy of every recorded span, in recording order.
  std::vector<TraceSpan> Snapshot() const EXCLUDES(mu_);

  std::string ToChromeTraceJson() const EXCLUDES(mu_);

 private:
  const std::string trace_id_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable Mutex mu_{LockRank::kTraceContext, "trace.spans"};
  uint64_t next_span_id_ GUARDED_BY(mu_) = 1;
  std::vector<TraceSpan> spans_ GUARDED_BY(mu_);
};

}  // namespace ires

#endif  // IRES_TELEMETRY_TRACE_CONTEXT_H_
