#ifndef IRES_TELEMETRY_EVENT_JOURNAL_H_
#define IRES_TELEMETRY_EVENT_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ires {

/// Decision-relevant transitions recorded by the flight recorder. Every
/// kind answers one "why did the serving layer do that?" question after the
/// fact: why a job was (not) admitted, which plan it got and at what cost,
/// how its steps fared, and how the fault-tolerance machinery escalated.
enum class EventKind : uint8_t {
  kAdmissionAccept,   // job admitted into the queue
  kAdmissionReject,   // validation 422 or queue-full 429 (no job id)
  kPlanCacheHit,      // planner served from the plan cache
  kPlanCacheMiss,     // planner fell through to DP
  kPlanChosen,        // the plan a job will execute (cost, engines)
  kStepStart,         // one step start attempt on its engine
  kStepRetry,         // in-place retry scheduled after a transient/timeout
  kStragglerKill,     // attempt killed at its straggler deadline
  kChaosInject,       // the fault oracle injected a fault into an attempt
  kBreakerTrip,       // a job's failure indicted an engine (job-scoped)
  kBreakerState,      // registry-level breaker transition (process-scoped)
  kReplan,            // recovering executor started a replanning round
  kJobFailed,         // job reached FAILED (terminal)
  kTaskSpan,          // labelled scheduler task ran (value = run seconds)
  kTaskRejected,      // Submit refused after scheduler Shutdown
  kReplicaState,      // control-plane replica up/suspect/down transition
  kJobFailover,       // job re-routed to a live replica after a crash
  kJournalFence,      // stale-incarnation journal append dropped
  kJournalTorn,       // journal append torn by a simulated crash
};

/// Stable snake_case name ("plan_cache_miss") used in JSON and the REST
/// `kind` filter.
const char* EventKindName(EventKind kind);
/// Inverse of EventKindName; false when `name` matches no kind.
bool ParseEventKind(const std::string& name, EventKind* out);

/// One journal entry. `seq` is unique and strictly increasing journal-wide
/// (and therefore strictly monotonic within each shard); events causally
/// ordered by the serving layer (submit happens-before worker pickup) carry
/// ordered sequence numbers, so sorting a query result by `seq` replays the
/// decision history. The payload fields are kind-specific; unused ones stay
/// at their defaults and are omitted from JSON.
struct JournalEvent {
  uint64_t seq = 0;
  double wall_seconds = 0.0;  // Unix-epoch seconds at Append time
  EventKind kind = EventKind::kAdmissionAccept;
  std::string job;     // job id; empty for process-scoped events
  int step = -1;       // plan step id, where applicable
  std::string engine;  // engine involved, where applicable
  std::string code;    // diagnostic code / failure kind / breaker state
  double value = 0.0;  // kind-specific scalar (cost, backoff, attempt, ...)
  std::string detail;  // free-form human summary
};

std::string EventToJson(const JournalEvent& event);
std::string EventsToJson(const std::vector<JournalEvent>& events);

/// Bounded structured event journal — the flight recorder behind
/// `GET /apiv1/debug/events` and the failure snapshots attached to job
/// records. Writers append into one of a fixed set of ring-buffer shards
/// (selected by thread id), so concurrent emitters contend only on their
/// shard's mutex and each critical section is a counter bump plus one slot
/// move. The ring overwrites its oldest entries when full and counts the
/// overwritten events, so postmortems know whether history was truncated.
///
/// Disabled journals (set_enabled(false)) drop events after one relaxed
/// atomic load — the switch the overhead bench flips to measure the cost of
/// always-on recording.
class EventJournal {
 public:
  struct Options {
    size_t shards = 8;
    size_t capacity_per_shard = 1024;
  };

  EventJournal() : EventJournal(Options()) {}
  explicit EventJournal(Options options);

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records one event, assigning `seq` and `wall_seconds`. Thread-safe.
  void Append(JournalEvent event);

  struct Filter {
    std::string job;         // empty = any job (including process-scoped)
    bool has_kind = false;   // when true, only `kind` events match
    EventKind kind = EventKind::kAdmissionAccept;
    uint64_t since_seq = 0;  // only events with seq > since_seq
    size_t limit = 256;      // keep the *latest* `limit` matches
  };

  /// Matching events, sorted by `seq` ascending. When more than
  /// `filter.limit` events match, the oldest are dropped — the journal is a
  /// postmortem tool, so the most recent history wins.
  std::vector<JournalEvent> Query(const Filter& filter) const;

  struct Stats {
    uint64_t appended = 0;  // events accepted into a ring
    uint64_t dropped = 0;   // events overwritten by ring wrap
  };
  Stats stats() const;

  /// Highest sequence number assigned so far (0 = nothing recorded).
  uint64_t head_seq() const {
    return next_seq_.load(std::memory_order_acquire);
  }

  size_t shard_count() const { return shards_.size(); }

 private:
  /// All shard mutexes share kEventJournalShard: Query/stats lock shards
  /// one at a time (released before the next is taken), so no two shard
  /// locks are ever held simultaneously and the equal rank is safe.
  struct Shard {
    mutable Mutex mu{LockRank::kEventJournalShard, "journal.shard"};
    std::vector<JournalEvent> ring GUARDED_BY(mu);  // fixed capacity
    size_t next GUARDED_BY(mu) = 0;                 // ring write cursor
    uint64_t appended GUARDED_BY(mu) = 0;
    uint64_t dropped GUARDED_BY(mu) = 0;
  };

  Shard& ShardForThisThread();

  const Options options_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> next_seq_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// A journal handle bound to one job id — what the per-run executor stack
/// (enforcer, recovering executor) carries so every event it emits is
/// attributed to the job being served. Copyable and cheap; a
/// default-constructed writer (or one built over a null journal) swallows
/// emissions, so call sites need no null checks.
class JournalWriter {
 public:
  JournalWriter() = default;
  JournalWriter(EventJournal* journal, std::string job)
      : journal_(journal), job_(std::move(job)) {}

  void Emit(EventKind kind, int step = -1, std::string engine = "",
            std::string code = "", double value = 0.0,
            std::string detail = "") const;

  explicit operator bool() const { return journal_ != nullptr; }
  const std::string& job() const { return job_; }
  EventJournal* journal() const { return journal_; }

 private:
  EventJournal* journal_ = nullptr;
  std::string job_;
};

}  // namespace ires

#endif  // IRES_TELEMETRY_EVENT_JOURNAL_H_
