#include "telemetry/slo.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/strings.h"

namespace ires {

namespace {

std::string FormatDouble(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

const std::string* LabelValue(const LabelSet& labels, const char* key) {
  for (const auto& [k, v] : labels) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool MatchesLabel(const std::string& want, const LabelSet& labels,
                  const char* key) {
  if (want.empty()) return true;
  const std::string* have = LabelValue(labels, key);
  return have != nullptr && *have == want;
}

}  // namespace

SloMonitor::SloMonitor(MetricsRegistry* metrics)
    : SloMonitor(metrics, Options()) {}

SloMonitor::SloMonitor(MetricsRegistry* metrics, Options options, Clock clock)
    : metrics_(metrics),
      options_(std::move(options)),
      clock_(std::move(clock)) {
  if (options_.windows_seconds.empty()) {
    options_.windows_seconds = {60.0, 600.0};
  }
  std::sort(options_.windows_seconds.begin(), options_.windows_seconds.end());
}

double SloMonitor::Now() const {
  if (clock_) return clock_();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SloMonitor::AddSlo(SloSpec spec) {
  if (spec.objective <= 0.0 || spec.objective >= 1.0) spec.objective = 0.99;
  MutexLock lock(mu_);
  SloState state;
  state.spec = std::move(spec);
  slos_.push_back(std::move(state));
}

void SloMonitor::Collect(const SloSpec& spec, uint64_t* good,
                         uint64_t* total) const {
  *good = 0;
  *total = 0;
  if (metrics_ == nullptr) return;
  if (spec.latency_threshold_seconds > 0.0) {
    metrics_->VisitHistograms(
        "ires_http_request_seconds",
        [&](const LabelSet& labels, const Histogram& histogram) {
          if (!MatchesLabel(spec.method, labels, "method")) return;
          if (!MatchesLabel(spec.route, labels, "route")) return;
          *good += histogram.CountAtOrBelow(spec.latency_threshold_seconds);
          *total += histogram.Count();
        });
  } else {
    metrics_->VisitCounters(
        "ires_http_requests_total",
        [&](const LabelSet& labels, uint64_t value) {
          if (!MatchesLabel(spec.method, labels, "method")) return;
          if (!MatchesLabel(spec.route, labels, "route")) return;
          *total += value;
          const std::string* code = LabelValue(labels, "code");
          const bool server_error =
              code != nullptr && !code->empty() && (*code)[0] == '5';
          if (!server_error) *good += value;
        });
  }
}

std::vector<SloMonitor::SloStatus> SloMonitor::Evaluate() {
  const double now = Now();
  const double max_window = options_.windows_seconds.back();

  std::vector<SloStatus> out;
  MutexLock lock(mu_);
  out.reserve(slos_.size());
  for (SloState& state : slos_) {
    uint64_t good = 0;
    uint64_t total = 0;
    Collect(state.spec, &good, &total);

    // Counters are cumulative and monotone; clamp defensively so a racing
    // snapshot can never produce negative deltas below.
    if (good > total) good = total;

    if (state.history.empty() ||
        now - state.history.back().t >=
            options_.min_sample_interval_seconds) {
      state.history.push_back({now, good, total});
    }
    // Keep one sample older than the widest window as its baseline.
    while (state.history.size() > 1 &&
           state.history[1].t <= now - max_window) {
      state.history.pop_front();
    }

    SloStatus status;
    status.spec = state.spec;
    status.lifetime_total = total;
    status.lifetime_good = good;
    status.compliance =
        total == 0 ? 1.0
                   : static_cast<double>(good) / static_cast<double>(total);

    const double budget = 1.0 - state.spec.objective;
    bool any_traffic = false;
    bool all_burning = true;
    for (double window : options_.windows_seconds) {
      // Baseline: the newest sample at or before the window start, so the
      // delta covers at most `window` seconds of traffic.
      const Sample* baseline = &state.history.front();
      for (const Sample& sample : state.history) {
        if (sample.t <= now - window) baseline = &sample;
      }
      WindowStatus ws;
      ws.window_seconds = window;
      const uint64_t delta_total =
          total >= baseline->total ? total - baseline->total : 0;
      const uint64_t base_bad = baseline->total - baseline->good;
      const uint64_t cur_bad = total - good;
      const uint64_t delta_bad = cur_bad >= base_bad ? cur_bad - base_bad : 0;
      ws.total = delta_total;
      ws.bad = delta_bad;
      ws.has_traffic = delta_total > 0;
      if (ws.has_traffic) {
        const double bad_fraction = static_cast<double>(delta_bad) /
                                    static_cast<double>(delta_total);
        ws.burn_rate = bad_fraction / budget;
        any_traffic = true;
        if (ws.burn_rate <= 1.0) all_burning = false;
      }
      if (metrics_ != nullptr) {
        metrics_
            ->GetGauge("ires_slo_burn_rate",
                       "Error-budget burn rate per SLO and window (1 = "
                       "budget spent exactly by period end)",
                       {{"slo", state.spec.name},
                        {"window", FormatDouble(window) + "s"}})
            ->Set(ws.burn_rate);
      }
      status.windows.push_back(ws);
    }
    status.burning = any_traffic && all_burning;

    if (metrics_ != nullptr) {
      metrics_
          ->GetGauge("ires_slo_compliance",
                     "Lifetime good-request fraction per SLO",
                     {{"slo", state.spec.name}})
          ->Set(status.compliance);
    }
    out.push_back(std::move(status));
  }
  return out;
}

std::vector<std::string> SloMonitor::Burning() {
  std::vector<std::string> out;
  for (const SloStatus& status : Evaluate()) {
    if (status.burning) out.push_back(status.spec.name);
  }
  return out;
}

std::string SloMonitor::ToJson() {
  const std::vector<SloStatus> statuses = Evaluate();
  std::string out = "{\"slos\":[";
  for (size_t i = 0; i < statuses.size(); ++i) {
    const SloStatus& status = statuses[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(status.spec.name) + "\"";
    out += ",\"workload\":\"" + JsonEscape(status.spec.workload) + "\"";
    if (!status.spec.method.empty()) {
      out += ",\"method\":\"" + JsonEscape(status.spec.method) + "\"";
    }
    if (!status.spec.route.empty()) {
      out += ",\"route\":\"" + JsonEscape(status.spec.route) + "\"";
    }
    out += ",\"objective\":" + FormatDouble(status.spec.objective);
    if (status.spec.latency_threshold_seconds > 0.0) {
      out += ",\"latencyThresholdSeconds\":" +
             FormatDouble(status.spec.latency_threshold_seconds);
    }
    out += ",\"total\":" + std::to_string(status.lifetime_total);
    out += ",\"compliance\":" + FormatDouble(status.compliance);
    out += std::string(",\"burning\":") + (status.burning ? "true" : "false");
    out += ",\"windows\":[";
    for (size_t w = 0; w < status.windows.size(); ++w) {
      const WindowStatus& ws = status.windows[w];
      if (w > 0) out += ",";
      out += "{\"seconds\":" + FormatDouble(ws.window_seconds);
      out += ",\"total\":" + std::to_string(ws.total);
      out += ",\"bad\":" + std::to_string(ws.bad);
      out += ",\"burnRate\":" + FormatDouble(ws.burn_rate) + "}";
    }
    out += "]}";
  }
  out += "],\"burning\":[";
  bool first = true;
  for (const SloStatus& status : statuses) {
    if (!status.burning) continue;
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(status.spec.name) + "\"";
  }
  out += "]}";
  return out;
}

}  // namespace ires
