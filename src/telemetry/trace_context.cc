#include "telemetry/trace_context.h"

#include <algorithm>
#include <cstdio>

namespace ires {

namespace {

std::string JsonEscapeText(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

TraceContext::TraceContext(std::string trace_id)
    : trace_id_(std::move(trace_id)),
      epoch_(std::chrono::steady_clock::now()) {}

double TraceContext::ElapsedUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

uint64_t TraceContext::BeginSpan(const std::string& name,
                                 const std::string& category) {
  const double start = ElapsedUs();
  MutexLock lock(mu_);
  TraceSpan span;
  span.id = next_span_id_++;
  span.name = name;
  span.category = category;
  span.timeline = kWallTimeline;
  span.start_us = start;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void TraceContext::EndSpan(
    uint64_t span_id, std::vector<std::pair<std::string, std::string>> args) {
  const double now = ElapsedUs();
  MutexLock lock(mu_);
  for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
    if (it->id != span_id) continue;
    if (!it->finished()) {
      it->duration_us = now - it->start_us;
      for (auto& arg : args) it->args.push_back(std::move(arg));
    }
    return;
  }
}

void TraceContext::AddSpan(
    const std::string& name, const std::string& category, int timeline,
    double start_us, double duration_us,
    std::vector<std::pair<std::string, std::string>> args) {
  MutexLock lock(mu_);
  TraceSpan span;
  span.id = next_span_id_++;
  span.name = name;
  span.category = category;
  span.timeline = timeline;
  span.start_us = start_us;
  span.duration_us = duration_us < 0.0 ? 0.0 : duration_us;
  span.args = std::move(args);
  spans_.push_back(std::move(span));
}

std::vector<TraceSpan> TraceContext::Snapshot() const {
  MutexLock lock(mu_);
  return spans_;
}

std::string TraceContext::ToChromeTraceJson() const {
  const std::vector<TraceSpan> spans = Snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  // Metadata events name the process (the job) and the two timelines.
  out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"" + JsonEscapeText(trace_id_) + "\"}},";
  out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":1,"
         "\"args\":{\"name\":\"wall clock\"}},";
  out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":2,"
         "\"args\":{\"name\":\"simulated execution\"}}";
  for (const TraceSpan& span : spans) {
    // Open spans render with the duration observed so far (0 floor), so a
    // trace fetched mid-run is still a valid document.
    const double duration =
        span.finished() ? span.duration_us
                        : std::max(0.0, ElapsedUs() - span.start_us);
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  ",{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,"
                  "\"dur\":%.3f,",
                  span.timeline, span.start_us, duration);
    out += buf;
    out += "\"name\":\"" + JsonEscapeText(span.name) + "\",\"cat\":\"" +
           JsonEscapeText(span.category) + "\",\"args\":{";
    bool first = true;
    for (const auto& [key, value] : span.args) {
      if (!first) out += ",";
      first = false;
      out += "\"" + JsonEscapeText(key) + "\":\"" + JsonEscapeText(value) +
             "\"";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace ires
