#include "workloadgen/pegasus.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace ires {

const char* PegasusTypeName(PegasusType type) {
  switch (type) {
    case PegasusType::kMontage: return "Montage";
    case PegasusType::kCyberShake: return "CyberShake";
    case PegasusType::kEpigenomics: return "Epigenomics";
    case PegasusType::kInspiral: return "Inspiral";
    case PegasusType::kSipht: return "Sipht";
  }
  return "?";
}

namespace {

// Helper that assembles a bipartite workflow graph plus its library. Every
// operator gets one output dataset node named "<op>_out".
class Builder {
 public:
  Builder(GeneratedWorkload* out, int engines_per_operator)
      : out_(out), engines_(engines_per_operator) {}

  // Adds a source dataset living on Store0.
  std::string Source(const std::string& name, double gigabytes) {
    MetadataTree meta;
    meta.Set("Constraints.Engine.FS", "Store0");
    meta.Set("Constraints.type", "bin");
    meta.Set("Execution.path", "sim://" + name);
    meta.Set("Optimization.size", std::to_string(gigabytes * 1e9));
    meta.Set("Optimization.documents", std::to_string(gigabytes * 1e6));
    (void)out_->library.AddDataset(Dataset(name, meta));
    out_->graph.AddDataset(name);
    return name;
  }

  // Adds one operator node of the given task type, consuming `inputs`
  // (dataset node names); returns the name of its output dataset node.
  std::string Task(const std::string& task_type, const std::string& name,
                   const std::vector<std::string>& inputs) {
    EnsureOperatorType(task_type);
    // Per-node abstract operator entry so graph parsing stays by-name.
    if (out_->library.FindAbstractByName(name) == nullptr) {
      MetadataTree meta;
      meta.Set("Constraints.OpSpecification.Algorithm.name", task_type);
      (void)out_->library.AddAbstract(AbstractOperator(name, meta));
    }
    out_->graph.AddOperator(name);
    for (const std::string& in : inputs) {
      (void)out_->graph.Connect(in, name);
    }
    const std::string out_name = name + "_out";
    out_->graph.AddDataset(out_name);
    (void)out_->graph.Connect(name, out_name);
    ++operators_;
    last_output_ = out_name;
    return out_name;
  }

  void Finish() { (void)out_->graph.SetTarget(last_output_); }

  int operators() const { return operators_; }

 private:
  // Registers the materialized implementations of a task type, one per
  // synthetic engine, each reading/writing its engine's native store (which
  // forces move operators on cross-engine edges).
  void EnsureOperatorType(const std::string& task_type) {
    if (!known_types_.insert(task_type).second) return;
    for (int e = 0; e < engines_; ++e) {
      MetadataTree meta;
      const std::string engine = "Eng" + std::to_string(e);
      const std::string store = "Store" + std::to_string(e);
      meta.Set("Constraints.Engine", engine);
      meta.Set("Constraints.OpSpecification.Algorithm.name", task_type);
      for (int port = 0; port < kMaxConstrainedPorts; ++port) {
        meta.Set("Constraints.Input" + std::to_string(port) + ".Engine.FS",
                 store);
      }
      meta.Set("Constraints.Output0.Engine.FS", store);
      meta.Set("Constraints.Output0.type", "bin");
      (void)out_->library.AddMaterialized(MaterializedOperator(
          task_type + "_" + engine, std::move(meta)));
    }
  }

  static constexpr int kMaxConstrainedPorts = 24;

  GeneratedWorkload* out_;
  int engines_;
  int operators_ = 0;
  std::string last_output_;
  std::set<std::string> known_types_;
};

// ---- Montage: w projections, ~1.5w overlapping diff-fits (in-degree 2),
// one concat over all, background model, w background corrections
// (in-degree 2), then imgtbl/add/shrink/jpeg aggregation chain. ------------
void BuildMontage(Builder* b, int target) {
  const int w = std::max(2, (target - 6) * 2 / 7);
  const int diffs = std::max(1, (3 * w) / 2);

  std::vector<std::string> projections;
  for (int i = 0; i < w; ++i) {
    const std::string src = b->Source("region_" + std::to_string(i), 0.5);
    projections.push_back(
        b->Task("mProjectPP", "mProjectPP_" + std::to_string(i), {src}));
  }
  std::vector<std::string> diff_outs;
  for (int i = 0; i < diffs; ++i) {
    // Overlapping pairs give Montage its high connectivity.
    const std::string& a = projections[i % w];
    const std::string& c = projections[(i + 1 + i / w) % w];
    diff_outs.push_back(
        b->Task("mDiffFit", "mDiffFit_" + std::to_string(i), {a, c}));
  }
  const std::string concat = b->Task("mConcatFit", "mConcatFit_0", diff_outs);
  const std::string bg_model = b->Task("mBgModel", "mBgModel_0", {concat});
  std::vector<std::string> corrected;
  for (int i = 0; i < w; ++i) {
    corrected.push_back(b->Task("mBackground",
                                "mBackground_" + std::to_string(i),
                                {projections[i], bg_model}));
  }
  const std::string imgtbl = b->Task("mImgTbl", "mImgTbl_0", corrected);
  const std::string add = b->Task("mAdd", "mAdd_0", {imgtbl});
  const std::string shrink = b->Task("mShrink", "mShrink_0", {add});
  b->Task("mJPEG", "mJPEG_0", {shrink});
}

// ---- CyberShake: w SGT extractions, each feeding s seismogram syntheses;
// peak-value calc per synthesis; two zip aggregators. ----------------------
void BuildCyberShake(Builder* b, int target) {
  const int w = std::max(1, target / 8);
  const int s = 3;
  std::vector<std::string> seis_outs;
  std::vector<std::string> peak_outs;
  for (int i = 0; i < w; ++i) {
    const std::string src = b->Source("sgt_" + std::to_string(i), 1.0);
    const std::string extract =
        b->Task("ExtractSGT", "ExtractSGT_" + std::to_string(i), {src});
    for (int j = 0; j < s; ++j) {
      const std::string syn = b->Task(
          "SeismogramSynthesis",
          "SeismogramSynthesis_" + std::to_string(i * s + j), {extract});
      seis_outs.push_back(syn);
      peak_outs.push_back(b->Task("PeakValCalcOkaya",
                                  "PeakValCalc_" + std::to_string(i * s + j),
                                  {syn}));
    }
  }
  const std::string zip_seis = b->Task("ZipSeis", "ZipSeis_0", seis_outs);
  const std::string zip_psa = b->Task("ZipPSA", "ZipPSA_0", peak_outs);
  b->Task("CyberShakeReport", "CyberShakeReport_0", {zip_seis, zip_psa});
}

// ---- Epigenomics: p parallel pipelines of 7 stages over input chunks,
// merged by a final chain. --------------------------------------------------
void BuildEpigenomics(Builder* b, int target) {
  static const char* kStages[] = {"fastQSplit", "filterContams", "sol2sanger",
                                  "fastq2bfq",  "map",           "mapMerge",
                                  "maqIndex"};
  const int stages = 7;
  const int p = std::max(1, (target - 2) / stages);
  std::vector<std::string> pipeline_outs;
  for (int i = 0; i < p; ++i) {
    std::string cur = b->Source("lane_" + std::to_string(i), 2.0);
    for (int s = 0; s < stages; ++s) {
      cur = b->Task(kStages[s],
                    std::string(kStages[s]) + "_" + std::to_string(i), {cur});
    }
    pipeline_outs.push_back(cur);
  }
  const std::string merge = b->Task("pileup", "pileup_0", pipeline_outs);
  b->Task("mapIndex", "mapIndex_0", {merge});
}

// ---- Inspiral: g groups of (t template banks -> t inspirals -> thinca),
// then a second matched-filter pass per group and a final thinca. -----------
void BuildInspiral(Builder* b, int target) {
  const int t = 4;
  const int g = std::max(1, target / (2 * t + 2));
  std::vector<std::string> group_outs;
  for (int i = 0; i < g; ++i) {
    const std::string src = b->Source("gwdata_" + std::to_string(i), 1.5);
    std::vector<std::string> inspirals;
    for (int j = 0; j < t; ++j) {
      const std::string bank =
          b->Task("TmpltBank",
                  "TmpltBank_" + std::to_string(i * t + j), {src});
      inspirals.push_back(b->Task(
          "Inspiral", "Inspiral_" + std::to_string(i * t + j), {bank}));
    }
    const std::string thinca =
        b->Task("Thinca", "Thinca_" + std::to_string(i), inspirals);
    const std::string trigbank =
        b->Task("TrigBank", "TrigBank_" + std::to_string(i), {thinca});
    group_outs.push_back(trigbank);
  }
  b->Task("ThincaFinal", "ThincaFinal_0", group_outs);
}

// ---- Sipht: many independent Patser runs concatenated, plus a handful of
// analysis tasks, all feeding one SRNA annotation. --------------------------
void BuildSipht(Builder* b, int target) {
  const int patsers = std::max(1, target - 8);
  std::vector<std::string> patser_outs;
  for (int i = 0; i < patsers; ++i) {
    const std::string src = b->Source("tfbs_" + std::to_string(i), 0.2);
    patser_outs.push_back(
        b->Task("Patser", "Patser_" + std::to_string(i), {src}));
  }
  const std::string concat =
      b->Task("PatserConcate", "PatserConcate_0", patser_outs);

  const std::string genome = b->Source("genome", 1.0);
  const std::string srna = b->Task("SRNA", "SRNA_0", {genome});
  const std::string blast = b->Task("Blast", "Blast_0", {srna});
  const std::string ffn = b->Task("FFN_Parse", "FFN_Parse_0", {genome});
  const std::string blast_syn =
      b->Task("BlastSynteny", "BlastSynteny_0", {ffn, srna});
  const std::string paralogues =
      b->Task("BlastParalogues", "BlastParalogues_0", {srna});
  b->Task("SRNAAnnotate", "SRNAAnnotate_0",
          {concat, blast, blast_syn, paralogues});
}

}  // namespace

GeneratedWorkload PegasusGenerator::Generate(PegasusType type,
                                             int target_operators,
                                             int engines_per_operator) {
  GeneratedWorkload out;
  Builder builder(&out, engines_per_operator);
  switch (type) {
    case PegasusType::kMontage:
      BuildMontage(&builder, target_operators);
      break;
    case PegasusType::kCyberShake:
      BuildCyberShake(&builder, target_operators);
      break;
    case PegasusType::kEpigenomics:
      BuildEpigenomics(&builder, target_operators);
      break;
    case PegasusType::kInspiral:
      BuildInspiral(&builder, target_operators);
      break;
    case PegasusType::kSipht:
      BuildSipht(&builder, target_operators);
      break;
  }
  builder.Finish();
  return out;
}

void PegasusGenerator::RegisterSyntheticEngines(EngineRegistry* registry,
                                                int count) {
  for (int e = 0; e < count; ++e) {
    SimulatedEngine::Config cfg;
    cfg.name = "Eng" + std::to_string(e);
    cfg.kind = e % 3 == 0 ? EngineKind::kCentralized
                          : EngineKind::kDistributedDisk;
    cfg.memory_budget_gb = 1e6;  // planner scaling: keep everything feasible
    cfg.default_resources = e % 3 == 0 ? Resources{1, 2, 4.0}
                                       : Resources{4, 2, 2.0};
    cfg.native_store = "Store" + std::to_string(e);
    auto engine = std::make_unique<SimulatedEngine>(cfg);
    AlgorithmProfile profile;
    profile.startup_seconds = 1.0 + 0.7 * e;
    profile.seconds_per_gb = 40.0 + 25.0 * ((e * 5) % 7);
    profile.parallel_fraction = cfg.kind == EngineKind::kCentralized ? 0.0
                                                                     : 0.9;
    profile.memory_per_input = 1.5;
    profile.output_bytes_ratio = 0.8;
    profile.output_records_ratio = 0.8;
    engine->SetProfile("*", profile);
    (void)registry->Add(std::move(engine));
  }
}

}  // namespace ires
