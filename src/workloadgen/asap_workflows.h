#ifndef IRES_WORKLOADGEN_ASAP_WORKFLOWS_H_
#define IRES_WORKLOADGEN_ASAP_WORKFLOWS_H_

#include "workloadgen/pegasus.h"

namespace ires {

/// Factories for the three evaluation workflows of deliverable §4 and the
/// HelloWorld fault-tolerance workflow of §4.5. Each returns the abstract
/// workflow graph plus a library holding the datasets, abstract operators
/// and all materialized implementations (Table 1 / §4 engine sets). They
/// pair with the engines of MakeStandardEngineRegistry().

/// Graph analytics: Pagerank over CDR data in HDFS; implementations in
/// Java (centralized), Hama (BSP) and Spark.
GeneratedWorkload MakeGraphAnalyticsWorkflow(double edges);

/// Text analytics: TF_IDF -> k-means over web content in HDFS;
/// implementations in scikit-learn (centralized) and Spark/MLlib.
GeneratedWorkload MakeTextAnalyticsWorkflow(double documents);

/// Relational analytics: the 3-query TPC-H-style workflow with small tables
/// in PostgreSQL, medium in MemSQL, large in HDFS; every query has
/// PostgreSQL / MemSQL / Spark implementations.
GeneratedWorkload MakeRelationalWorkflow(double scale_gb);

/// The Cilk text-clustering workflow of deliverable §3.4: the same
/// tf-idf -> k-means pipeline but with the single hand-tuned Cilk
/// implementation per operator (TF_IDF_cilk, kmeans_cilk) over the
/// `textData` dataset (932 MB of raw text in HDFS).
GeneratedWorkload MakeCilkTextClusteringWorkflow(
    double input_bytes = 932e6);

/// The 4-operator HelloWorld workflow of the fault-tolerance evaluation,
/// with the engine alternatives of Table 1:
///   HelloWorld  : Python
///   HelloWorld1 : Spark, Python
///   HelloWorld2 : Spark, MLLib, PostgreSQL, Hive
///   HelloWorld3 : Spark, Python
GeneratedWorkload MakeHelloWorldWorkflow(double input_gb = 1.0);

}  // namespace ires

#endif  // IRES_WORKLOADGEN_ASAP_WORKFLOWS_H_
