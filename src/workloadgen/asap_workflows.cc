#include "workloadgen/asap_workflows.h"

#include <vector>

#include "engines/standard_engines.h"

namespace ires {

namespace {

// Builds a dataset description living in `store` with the given size.
Dataset MakeDataset(const std::string& name, const std::string& store,
                    const std::string& format, double bytes, double records) {
  MetadataTree meta;
  meta.Set("Constraints.Engine.FS", store);
  meta.Set("Constraints.type", format);
  meta.Set("Execution.path", "sim://" + name);
  meta.Set("Optimization.size", std::to_string(bytes));
  meta.Set("Optimization.documents", std::to_string(records));
  return Dataset(name, meta);
}

// Declares one materialized implementation: `algorithm` on `engine`, inputs
// expected in `in_store`/`in_format`, output written to `out_store` as
// `out_format`. Ports 0..3 share the input spec.
MaterializedOperator MakeImpl(const std::string& name,
                              const std::string& algorithm,
                              const std::string& engine,
                              const std::string& in_store,
                              const std::string& in_format,
                              const std::string& out_store,
                              const std::string& out_format) {
  MetadataTree meta;
  meta.Set("Constraints.Engine", engine);
  meta.Set("Constraints.OpSpecification.Algorithm.name", algorithm);
  for (int port = 0; port < 4; ++port) {
    const std::string prefix = "Constraints.Input" + std::to_string(port);
    meta.Set(prefix + ".Engine.FS", in_store);
    if (!in_format.empty()) meta.Set(prefix + ".type", in_format);
  }
  meta.Set("Constraints.Output0.Engine.FS", out_store);
  meta.Set("Constraints.Output0.type", out_format);
  return MaterializedOperator(name, std::move(meta));
}

void AddAbstract(GeneratedWorkload* w, const std::string& node_name,
                 const std::string& algorithm) {
  MetadataTree meta;
  meta.Set("Constraints.OpSpecification.Algorithm.name", algorithm);
  (void)w->library.AddAbstract(AbstractOperator(node_name, meta));
}

}  // namespace

GeneratedWorkload MakeGraphAnalyticsWorkflow(double edges) {
  GeneratedWorkload w;
  const double bytes = edges * kBytesPerEdge;
  (void)w.library.AddDataset(
      MakeDataset("cdrGraph", "HDFS", "edges", bytes, edges));
  AddAbstract(&w, "pagerank", "Pagerank");
  // Pagerank implementations (deliverable §4: Spark, Hama, Java). All read
  // and write HDFS directly.
  (void)w.library.AddMaterialized(MakeImpl(
      "Pagerank_Java", "Pagerank", "Java", "HDFS", "edges", "HDFS", "ranks"));
  (void)w.library.AddMaterialized(MakeImpl(
      "Pagerank_Hama", "Pagerank", "Hama", "HDFS", "edges", "HDFS", "ranks"));
  (void)w.library.AddMaterialized(MakeImpl("Pagerank_Spark", "Pagerank",
                                           "Spark", "HDFS", "edges", "HDFS",
                                           "ranks"));

  w.graph.AddDataset("cdrGraph");
  w.graph.AddOperator("pagerank");
  (void)w.graph.Connect("cdrGraph", "pagerank");
  w.graph.AddDataset("ranks");
  (void)w.graph.Connect("pagerank", "ranks");
  (void)w.graph.SetTarget("ranks");
  return w;
}

GeneratedWorkload MakeTextAnalyticsWorkflow(double documents) {
  GeneratedWorkload w;
  const double bytes = documents * kBytesPerDocument;
  (void)w.library.AddDataset(
      MakeDataset("webContent", "HDFS", "text", bytes, documents));
  AddAbstract(&w, "tfidf", "TF_IDF");
  AddAbstract(&w, "kmeans", "kmeans");

  // scikit runs centrally: it can read HDFS but materializes its output
  // locally; Spark/MLlib reads and writes HDFS. The planner inserts the
  // move/transform operators between them (deliverable Fig. 5).
  (void)w.library.AddMaterialized(MakeImpl("TF_IDF_scikit", "TF_IDF",
                                           "scikit", "HDFS", "text", "Local",
                                           "arff"));
  (void)w.library.AddMaterialized(MakeImpl(
      "TF_IDF_mllib", "TF_IDF", "Spark", "HDFS", "text", "HDFS", "arff"));
  (void)w.library.AddMaterialized(MakeImpl("kmeans_scikit", "kmeans",
                                           "scikit", "Local", "arff", "Local",
                                           "clusters"));
  (void)w.library.AddMaterialized(MakeImpl("kmeans_mllib", "kmeans", "Spark",
                                           "HDFS", "arff", "HDFS",
                                           "clusters"));

  w.graph.AddDataset("webContent");
  w.graph.AddOperator("tfidf");
  (void)w.graph.Connect("webContent", "tfidf");
  w.graph.AddDataset("vectors");
  (void)w.graph.Connect("tfidf", "vectors");
  w.graph.AddOperator("kmeans");
  (void)w.graph.Connect("vectors", "kmeans");
  w.graph.AddDataset("clusters");
  (void)w.graph.Connect("kmeans", "clusters");
  (void)w.graph.SetTarget("clusters");
  return w;
}

GeneratedWorkload MakeRelationalWorkflow(double scale_gb) {
  GeneratedWorkload w;
  // TPC-H table-group placement of §4: small legacy tables in PostgreSQL,
  // medium in MemSQL, large in HDFS (sizes as fractions of the scale).
  const double gb = 1e9;
  (void)w.library.AddDataset(MakeDataset("smallTables", "PostgreSQL", "rows",
                                         0.03 * scale_gb * gb,
                                         150e3 * scale_gb));
  (void)w.library.AddDataset(MakeDataset("mediumTables", "MemSQL", "rows",
                                         0.15 * scale_gb * gb,
                                         1e6 * scale_gb));
  (void)w.library.AddDataset(MakeDataset("largeTables", "HDFS", "rows",
                                         0.82 * scale_gb * gb,
                                         7.5e6 * scale_gb));
  AddAbstract(&w, "q1", "SPJQuery");
  AddAbstract(&w, "q2", "SPJQuery");
  AddAbstract(&w, "q3", "SPJHeavyQuery");

  struct EngineSpec {
    const char* engine;
    const char* store;
  };
  const std::vector<EngineSpec> fleet = {
      {"PostgreSQL", "PostgreSQL"}, {"MemSQL", "MemSQL"}, {"Spark", "HDFS"}};
  for (const char* algo : {"SPJQuery", "SPJHeavyQuery"}) {
    for (const EngineSpec& spec : fleet) {
      (void)w.library.AddMaterialized(
          MakeImpl(std::string(algo) + "_" + spec.engine, algo, spec.engine,
                   spec.store, "rows", spec.store, "rows"));
    }
  }

  w.graph.AddDataset("smallTables");
  w.graph.AddDataset("mediumTables");
  w.graph.AddDataset("largeTables");
  w.graph.AddOperator("q1");
  (void)w.graph.Connect("smallTables", "q1");
  w.graph.AddDataset("q1_out");
  (void)w.graph.Connect("q1", "q1_out");
  w.graph.AddOperator("q2");
  (void)w.graph.Connect("mediumTables", "q2", 0);
  (void)w.graph.Connect("q1_out", "q2", 1);
  w.graph.AddDataset("q2_out");
  (void)w.graph.Connect("q2", "q2_out");
  w.graph.AddOperator("q3");
  (void)w.graph.Connect("largeTables", "q3", 0);
  (void)w.graph.Connect("q2_out", "q3", 1);
  w.graph.AddDataset("result");
  (void)w.graph.Connect("q3", "result");
  (void)w.graph.SetTarget("result");
  return w;
}

GeneratedWorkload MakeCilkTextClusteringWorkflow(double input_bytes) {
  GeneratedWorkload w;
  // The §3.4 dataset definition: raw text in HDFS, Optimization.size=932E06.
  (void)w.library.AddDataset(MakeDataset("textData", "HDFS", "text",
                                         input_bytes,
                                         input_bytes / kBytesPerDocument));
  AddAbstract(&w, "tfidf_cilk", "TF_IDF");
  AddAbstract(&w, "kmeans", "kmeans");
  // TF_IDF_cilk: reads the HDFS text (copyToLocal handled by the engine),
  // writes arff back to HDFS; kmeans_cilk consumes the HDFS arff.
  (void)w.library.AddMaterialized(MakeImpl("TF_IDF_cilk", "TF_IDF", "Cilk",
                                           "HDFS", "text", "HDFS", "arff"));
  (void)w.library.AddMaterialized(MakeImpl("kmeans_cilk", "kmeans", "Cilk",
                                           "HDFS", "arff", "HDFS",
                                           "clusters"));

  w.graph.AddDataset("textData");
  w.graph.AddOperator("tfidf_cilk");
  (void)w.graph.Connect("textData", "tfidf_cilk");
  w.graph.AddDataset("d1");
  (void)w.graph.Connect("tfidf_cilk", "d1");
  w.graph.AddOperator("kmeans");
  (void)w.graph.Connect("d1", "kmeans");
  w.graph.AddDataset("d2");
  (void)w.graph.Connect("kmeans", "d2");
  (void)w.graph.SetTarget("d2");
  return w;
}

GeneratedWorkload MakeHelloWorldWorkflow(double input_gb) {
  GeneratedWorkload w;
  (void)w.library.AddDataset(MakeDataset("helloInput", "Local", "text",
                                         input_gb * 1e9, input_gb * 1e6));
  struct OpSpec {
    const char* name;
    std::vector<const char*> engines;
  };
  // Table 1 of the deliverable.
  const std::vector<OpSpec> ops = {
      {"HelloWorld", {"Python"}},
      {"HelloWorld1", {"Spark", "Python"}},
      {"HelloWorld2", {"Spark", "MLLib", "PostgreSQL", "Hive"}},
      {"HelloWorld3", {"Spark", "Python"}},
  };
  auto store_of = [](const std::string& engine) -> std::string {
    if (engine == "Python") return "Local";
    if (engine == "PostgreSQL") return "PostgreSQL";
    return "HDFS";
  };
  w.graph.AddDataset("helloInput");
  std::string upstream = "helloInput";
  for (const OpSpec& op : ops) {
    AddAbstract(&w, op.name, op.name);
    for (const char* engine : op.engines) {
      const std::string store = store_of(engine);
      (void)w.library.AddMaterialized(
          MakeImpl(std::string(op.name) + "_" + engine, op.name, engine,
                   store, "text", store, "text"));
    }
    w.graph.AddOperator(op.name);
    (void)w.graph.Connect(upstream, op.name);
    const std::string out = std::string(op.name) + "_out";
    w.graph.AddDataset(out);
    (void)w.graph.Connect(op.name, out);
    upstream = out;
  }
  (void)w.graph.SetTarget(upstream);
  return w;
}

}  // namespace ires
