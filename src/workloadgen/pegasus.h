#ifndef IRES_WORKLOADGEN_PEGASUS_H_
#define IRES_WORKLOADGEN_PEGASUS_H_

#include <string>

#include "common/rng.h"
#include "engines/engine_registry.h"
#include "operators/operator_library.h"
#include "workflow/workflow_graph.h"

namespace ires {

/// The five scientific workflow families of the Pegasus workflow generator
/// (Bharathi et al. 2008) used by the planner-scaling experiments
/// (deliverable §4.2, Figures 14-15).
enum class PegasusType {
  kMontage,      // astronomy mosaics: highly connected, heavy fan-in/out
  kCyberShake,   // earthquake science: two-level fan with aggregators
  kEpigenomics,  // biology: parallel pipelines merging at the end
  kInspiral,     // gravitational physics: grouped pipeline stages
  kSipht,        // bioinformatics: wide independent fan-in
};

const char* PegasusTypeName(PegasusType type);

/// A generated abstract workflow together with the operator library that
/// materializes it (one abstract operator per task, `engines_per_operator`
/// implementations each) and the source dataset descriptions.
struct GeneratedWorkload {
  WorkflowGraph graph;
  OperatorLibrary library;
};

/// Generates Pegasus-family workflow DAGs at arbitrary sizes with the
/// published topology signatures (Montage's high in/out-degrees, pipelined
/// Epigenomics chains, etc.).
class PegasusGenerator {
 public:
  explicit PegasusGenerator(uint64_t seed = 1234) : rng_(seed) {}

  /// Builds a workflow with approximately `target_operators` operator nodes
  /// and `engines_per_operator` materialized implementations per abstract
  /// operator (the paper's m). Implementations are spread over the
  /// synthetic engines Eng0..Eng<m-1>.
  GeneratedWorkload Generate(PegasusType type, int target_operators,
                             int engines_per_operator);

  /// Registers `count` synthetic engines ("Eng0".."Eng<count-1>") with
  /// distinct stores ("Store0"...) and mildly different rates into
  /// `registry`, so that engine choice and data moves are non-trivial.
  static void RegisterSyntheticEngines(EngineRegistry* registry, int count);

 private:
  Rng rng_;
};

}  // namespace ires

#endif  // IRES_WORKLOADGEN_PEGASUS_H_
