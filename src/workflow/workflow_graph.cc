#include "workflow/workflow_graph.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "analysis/workflow_analyzer.h"
#include "common/strings.h"

namespace {
// Ports index a std::vector that Connect resizes up to the requested slot;
// cap them so a typo'd port number cannot allocate gigabytes.
constexpr int kMaxPort = 4096;
}  // namespace

namespace ires {

int WorkflowGraph::AddDataset(const std::string& name) {
  return AddNode(name, NodeKind::kDataset);
}

int WorkflowGraph::AddOperator(const std::string& name) {
  return AddNode(name, NodeKind::kOperator);
}

int WorkflowGraph::AddNode(const std::string& name, NodeKind kind) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{name, kind, {}, {}});
  index_.emplace(name, id);
  return id;
}

Status WorkflowGraph::Connect(const std::string& from, const std::string& to,
                              int port) {
  auto fit = index_.find(from);
  auto tit = index_.find(to);
  if (fit == index_.end()) return Status::NotFound("node: " + from);
  if (tit == index_.end()) return Status::NotFound("node: " + to);
  Node& src = nodes_[fit->second];
  Node& dst = nodes_[tit->second];
  if (src.kind == dst.kind) {
    return Status::InvalidArgument("edge " + from + "->" + to +
                                   " must connect a dataset and an operator");
  }
  if (port > kMaxPort) {
    return Status::InvalidArgument("edge " + from + "->" + to + ": port " +
                                   std::to_string(port) + " exceeds the " +
                                   std::to_string(kMaxPort) + " limit");
  }
  auto place = [](std::vector<int>& ports, int slot, int id) {
    if (slot < 0) {
      ports.push_back(id);
      return;
    }
    if (static_cast<int>(ports.size()) <= slot) ports.resize(slot + 1, -1);
    ports[slot] = id;
  };
  if (src.kind == NodeKind::kDataset) {
    // dataset -> operator: occupies an input port of the operator.
    place(dst.inputs, port, fit->second);
    src.inputs.push_back(tit->second);  // consumers of the dataset
  } else {
    // operator -> dataset: occupies an output port of the operator.
    place(src.outputs, port, tit->second);
    dst.outputs.push_back(fit->second);  // producer of the dataset
  }
  return Status::OK();
}

Status WorkflowGraph::SetTarget(const std::string& name) {
  auto it = index_.find(name);
  if (it == index_.end()) return Status::NotFound("target node: " + name);
  if (nodes_[it->second].kind != NodeKind::kDataset) {
    return Status::InvalidArgument("target must be a dataset: " + name);
  }
  target_ = it->second;
  return Status::OK();
}

int WorkflowGraph::operator_count() const {
  return static_cast<int>(std::count_if(
      nodes_.begin(), nodes_.end(),
      [](const Node& n) { return n.kind == NodeKind::kOperator; }));
}

int WorkflowGraph::dataset_count() const {
  return static_cast<int>(nodes_.size()) - operator_count();
}

Result<std::vector<int>> WorkflowGraph::TopologicalOperators() const {
  // Kahn's algorithm over operator nodes; an operator becomes ready when all
  // producers of its input datasets have been emitted.
  std::vector<int> pending(nodes_.size(), 0);
  std::vector<int> ready;
  for (size_t id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.kind != NodeKind::kOperator) continue;
    int deps = 0;
    for (int input : n.inputs) {
      if (input >= 0 && !nodes_[input].outputs.empty()) ++deps;
    }
    pending[id] = deps;
    if (deps == 0) ready.push_back(static_cast<int>(id));
  }
  // Deterministic order: process lowest id first.
  std::sort(ready.begin(), ready.end(), std::greater<int>());
  std::vector<int> order;
  while (!ready.empty()) {
    int op = ready.back();
    ready.pop_back();
    order.push_back(op);
    for (int out_ds : nodes_[op].outputs) {
      if (out_ds < 0) continue;
      for (int consumer : nodes_[out_ds].inputs) {
        if (--pending[consumer] == 0) {
          auto pos = std::lower_bound(ready.begin(), ready.end(), consumer,
                                      std::greater<int>());
          ready.insert(pos, consumer);
        }
      }
    }
  }
  if (static_cast<int>(order.size()) != operator_count()) {
    return Status::FailedPrecondition("workflow graph contains a cycle");
  }
  return order;
}

Status WorkflowGraph::Validate() const {
  // Thin wrapper over the structural passes of the workflow linter (no
  // library/engine collaborators, so only WF/PO structure checks run); the
  // Status keeps the historical FailedPrecondition contract while the full
  // diagnostics surface lives in analysis/workflow_analyzer.h.
  return DiagnosticsToStatus(WorkflowAnalyzer().Analyze(*this));
}

std::string WorkflowGraph::ToDot() const {
  std::string out = "digraph workflow {\n  rankdir=LR;\n";
  for (size_t id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    if (node.kind == NodeKind::kOperator) {
      out += "  n" + std::to_string(id) + " [shape=box,label=\"" +
             node.name + "\"];\n";
    } else {
      const char* shape =
          static_cast<int>(id) == target_ ? "doublecircle" : "folder";
      out += "  n" + std::to_string(id) + " [shape=" + shape +
             ",label=\"" + node.name + "\"];\n";
    }
  }
  for (size_t id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    if (node.kind != NodeKind::kOperator) continue;
    for (int input : node.inputs) {
      if (input >= 0) {
        out += "  n" + std::to_string(input) + " -> n" + std::to_string(id) +
               ";\n";
      }
    }
    for (int output : node.outputs) {
      if (output >= 0) {
        out += "  n" + std::to_string(id) + " -> n" +
               std::to_string(output) + ";\n";
      }
    }
  }
  out += "}\n";
  return out;
}

Result<WorkflowGraph> WorkflowGraph::ParseGraphFile(
    const std::string& text, const OperatorLibrary& library) {
  WorkflowGraph graph;
  auto resolve = [&](const std::string& name) {
    if (graph.has_node(name)) return;
    if (library.FindAbstractByName(name) != nullptr) {
      graph.AddOperator(name);
    } else {
      graph.AddDataset(name);  // known dataset or abstract intermediate
    }
  };
  int line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = SplitAndTrim(line, ',');
    if (fields.size() < 2) {
      return Status::InvalidArgument("graph line " + std::to_string(line_no) +
                                     ": expected 'from,to[,port]'");
    }
    if (fields[1] == "$$target") {
      resolve(fields[0]);
      IRES_RETURN_IF_ERROR(graph.SetTarget(fields[0]));
      continue;
    }
    resolve(fields[0]);
    resolve(fields[1]);
    int port = -1;
    if (fields.size() > 2) {
      // strtol with full validation: std::atoi silently maps garbage to 0,
      // which would mis-wire the edge onto port 0 instead of rejecting it.
      errno = 0;
      char* end = nullptr;
      const long parsed = std::strtol(fields[2].c_str(), &end, 10);
      if (end == fields[2].c_str() || *end != '\0' || errno == ERANGE ||
          parsed < -1 || parsed > kMaxPort) {
        return Status::InvalidArgument(
            "graph line " + std::to_string(line_no) + ": bad port '" +
            fields[2] + "'");
      }
      port = static_cast<int>(parsed);
    }
    IRES_RETURN_IF_ERROR(graph.Connect(fields[0], fields[1], port));
  }
  return graph;
}

uint64_t WorkflowGraph::Fingerprint() const {
  // FNV-1a over a canonical serialization of the graph structure.
  uint64_t h = 14695981039346656037ull;
  auto mix_byte = [&h](unsigned char b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  auto mix_int = [&](uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte((v >> (8 * i)) & 0xff);
  };
  auto mix_string = [&](const std::string& s) {
    for (char c : s) mix_byte(static_cast<unsigned char>(c));
    mix_byte(0);  // terminator so "ab","c" != "a","bc"
  };
  mix_int(nodes_.size());
  for (const Node& node : nodes_) {
    mix_string(node.name);
    mix_int(node.kind == NodeKind::kOperator ? 1 : 0);
    mix_int(node.inputs.size());
    for (int id : node.inputs) mix_int(static_cast<uint64_t>(id));
    mix_int(node.outputs.size());
    for (int id : node.outputs) mix_int(static_cast<uint64_t>(id));
  }
  mix_int(static_cast<uint64_t>(target_));
  return h;
}

}  // namespace ires
