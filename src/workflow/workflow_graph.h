#ifndef IRES_WORKFLOW_WORKFLOW_GRAPH_H_
#define IRES_WORKFLOW_WORKFLOW_GRAPH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "operators/operator_library.h"

namespace ires {

/// The abstract workflow DAG G(Datasets, Operators): a bipartite graph of
/// dataset nodes and (abstract) operator nodes. Operators consume dataset
/// nodes on ordered input ports and produce dataset nodes on ordered output
/// ports. One dataset node is designated the target (`$$target` in the
/// platform's graph files).
class WorkflowGraph {
 public:
  enum class NodeKind { kDataset, kOperator };

  struct Node {
    std::string name;
    NodeKind kind = NodeKind::kDataset;
    /// For operators: dataset node ids per input port (index = port).
    /// For datasets: ids of operator nodes that consume this dataset.
    std::vector<int> inputs;
    /// For operators: dataset node ids per output port.
    /// For datasets: id of the producing operator (at most one), else empty.
    std::vector<int> outputs;
  };

  WorkflowGraph() = default;

  /// Adds a dataset node; returns its id. Re-adding a name returns the
  /// existing id (kinds must agree).
  int AddDataset(const std::string& name);

  /// Adds an abstract-operator node; returns its id.
  int AddOperator(const std::string& name);

  /// Connects `from` -> `to`. Exactly one endpoint must be an operator; the
  /// port is the position on that operator's input (dataset->op) or output
  /// (op->dataset) list. Ports fill in call order when `port` is -1.
  Status Connect(const std::string& from, const std::string& to,
                 int port = -1);

  /// Marks the dataset `name` as the workflow target.
  Status SetTarget(const std::string& name);

  int target() const { return target_; }
  bool has_node(const std::string& name) const {
    return index_.count(name) > 0;
  }
  int node_id(const std::string& name) const {
    auto it = index_.find(name);
    return it == index_.end() ? -1 : it->second;
  }
  const Node& node(int id) const { return nodes_[id]; }
  size_t size() const { return nodes_.size(); }

  int operator_count() const;
  int dataset_count() const;

  /// Ids of operator nodes in a topological (dependency-respecting) order.
  /// Fails with FailedPrecondition when the graph has a cycle.
  Result<std::vector<int>> TopologicalOperators() const;

  /// Structural validation: a target exists, every operator has at least one
  /// input and one output, every non-source dataset has exactly one
  /// producer, the graph is acyclic and no node is left orphaned.
  /// Implemented as a thin wrapper over the structural passes of
  /// analysis/workflow_analyzer.h; callers who want the individual findings
  /// (codes, locations, fix hints) should run WorkflowAnalyzer directly.
  Status Validate() const;

  /// Stable structural hash over nodes, edges and target — the plan-cache
  /// key component that identifies "the same workflow submitted again".
  /// Graphs built by the same sequence of node/edge additions (e.g. parsed
  /// from the same `graph` file) hash identically; a differing assembly
  /// order of an equivalent graph may hash differently (a harmless cache
  /// miss, never a false hit).
  uint64_t Fingerprint() const;

  /// Graphviz rendering of the abstract workflow (datasets as folders,
  /// operators as boxes, the target double-circled) — what the platform's
  /// web UI draws in its Abstract Workflows tab.
  std::string ToDot() const;

  /// Parses the platform's `graph` file format:
  ///   asapServerLog,LineCount,0
  ///   LineCount,d1,0
  ///   d1,$$target
  /// Node kinds are resolved against `library`: names registered as datasets
  /// or abstract operators take those kinds; unknown names become abstract
  /// dataset nodes (intermediate results like `d1`).
  static Result<WorkflowGraph> ParseGraphFile(const std::string& text,
                                              const OperatorLibrary& library);

 private:
  int AddNode(const std::string& name, NodeKind kind);

  std::vector<Node> nodes_;
  std::map<std::string, int> index_;
  int target_ = -1;
};

}  // namespace ires

#endif  // IRES_WORKFLOW_WORKFLOW_GRAPH_H_
