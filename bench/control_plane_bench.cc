// Control-plane resilience bench: (1) write-ahead job-journal append and
// encode/decode throughput, (2) the control-plane tax — end-to-end job
// throughput through the sharded plane (routing + journal + tenant
// admission) against a bare JobService, and (3) sustained throughput under
// seeded replica kills with the post-run resilience ledger (kills,
// failovers, resumed jobs, fenced appends). Dumps BENCH_control_plane.json;
// CI's nightly control-plane soak runs `control_plane_bench --smoke` and
// archives the file.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "service/control_plane.h"
#include "service/job_journal.h"
#include "workloadgen/asap_workflows.h"

namespace {

using namespace ires;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct JournalResult {
  int records = 0;
  double appends_per_sec = 0.0;
  double encode_ms = 0.0;
  double decode_ms = 0.0;
};

JournalResult RunJournal(int records) {
  JournalResult r;
  r.records = records;
  JobJournal journal;
  const int jobs = records / 4;  // open + running + step + terminal each
  const double a0 = NowSeconds();
  for (int i = 0; i < jobs; ++i) {
    const std::string id = "job-" + std::to_string(i);
    journal.Open(id, i % 3, "default", "", "bench", "dag");
    JobJournalRecord record;
    record.job = id;
    record.incarnation = 1;
    record.replica = i % 3;
    record.phase = JournalPhase::kRunning;
    journal.Append(record);
    record.phase = JournalPhase::kStepCompleted;
    record.step = 0;
    record.artifact.dataset_node = "d1";
    journal.Append(record);
    record.phase = JournalPhase::kTerminal;
    record.state = "SUCCEEDED";
    journal.Append(record);
  }
  r.appends_per_sec = static_cast<double>(jobs * 4) / (NowSeconds() - a0);

  const double e0 = NowSeconds();
  const std::string text = journal.Encode();
  r.encode_ms = (NowSeconds() - e0) * 1e3;
  const double d0 = NowSeconds();
  const JobJournal::DecodeResult decoded = JobJournal::Decode(text);
  r.decode_ms = (NowSeconds() - d0) * 1e3;
  if (decoded.records.size() != static_cast<size_t>(jobs * 4)) {
    std::fprintf(stderr, "journal roundtrip lost records: %zu of %d\n",
                 decoded.records.size(), jobs * 4);
  }
  return r;
}

/// Submits `jobs` workflows with bounded 429 retries and drains the
/// target; returns accepted-to-terminal throughput.
template <typename SubmitFn, typename IdleFn>
double RunServing(int jobs, SubmitFn submit, IdleFn idle) {
  const double t0 = NowSeconds();
  for (int i = 0; i < jobs; ++i) {
    for (int attempt = 0; attempt < 400; ++attempt) {
      if (submit()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  idle();
  return static_cast<double>(jobs) / (NowSeconds() - t0);
}

struct ChaosResult {
  double jobs_per_sec = 0.0;
  uint64_t kills = 0;
  uint64_t failovers = 0;
  int resumed = 0;
  uint64_t fenced = 0;
  uint64_t torn = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int journal_records = smoke ? 4000 : 40000;
  const int serving_jobs = smoke ? 60 : 300;
  const int chaos_jobs = smoke ? 60 : 300;

  const GeneratedWorkload workload = MakeTextAnalyticsWorkflow(1000);

  // ---- journal throughput ------------------------------------------------
  const JournalResult journal = RunJournal(journal_records);
  std::printf("journal  %d records  %.0f appends/s  encode=%.2fms "
              "decode=%.2fms\n",
              journal.records, journal.appends_per_sec, journal.encode_ms,
              journal.decode_ms);

  // ---- the control-plane tax ---------------------------------------------
  double direct_jps = 0.0;
  {
    IresServer server;
    if (!server.ImportLibrary(workload.library).ok()) return 1;
    JobService::Options options;
    options.workers = 4;
    options.queue_capacity = 64;
    JobService jobs(&server, options);
    direct_jps = RunServing(
        serving_jobs,
        [&] { return jobs.Submit(workload.graph, "text").ok(); },
        [&] { jobs.WaitForIdle(300.0); });
  }
  double plane_jps = 0.0;
  {
    IresServer server;
    if (!server.ImportLibrary(workload.library).ok()) return 1;
    ControlPlane::Options options;
    options.replicas = 3;
    options.replica_options.workers = 4;
    options.replica_options.queue_capacity = 64;
    ControlPlane plane(&server, options);
    ControlPlane::SubmitRequest request;
    request.workflow_name = "text";
    plane_jps = RunServing(
        serving_jobs,
        [&] { return plane.Submit(workload.graph, request).ok(); },
        [&] { plane.WaitForIdle(300.0); });
  }
  const double tax_pct =
      direct_jps <= 0.0 ? 0.0 : (1.0 - plane_jps / direct_jps) * 100.0;
  std::printf("serving  direct=%.1f jobs/s  plane=%.1f jobs/s  "
              "tax=%.1f%%\n",
              direct_jps, plane_jps, tax_pct);

  // ---- throughput under replica kills ------------------------------------
  ChaosResult chaos;
  {
    IresServer server;
    if (!server.ImportLibrary(workload.library).ok()) return 1;
    ControlPlane::Options options;
    options.replicas = 3;
    options.replica_options.workers = 4;
    options.replica_options.queue_capacity = 64;
    options.chaos.seed = 4242;
    options.chaos.kill_mid_plan_probability = 0.02;
    options.chaos.kill_mid_run_probability = 0.02;
    options.chaos.torn_append_probability = 0.5;
    options.chaos.max_kills = 2;  // leaves one live replica at the floor
    ControlPlane plane(&server, options);
    ControlPlane::SubmitRequest request;
    request.workflow_name = "text";
    chaos.jobs_per_sec = RunServing(
        chaos_jobs,
        [&] { return plane.Submit(workload.graph, request).ok(); },
        [&] { plane.WaitForIdle(300.0); });
    chaos.kills = plane.chaos()->counts().kills();
    chaos.failovers = plane.failovers();
    for (const JobRecord& record : plane.List()) {
      if (record.resumed) ++chaos.resumed;
    }
    chaos.fenced = plane.journal().stats().fenced;
    chaos.torn = plane.journal().stats().torn;
  }
  std::printf("chaos    %.1f jobs/s  kills=%llu failovers=%llu resumed=%d "
              "fenced=%llu torn=%llu\n",
              chaos.jobs_per_sec,
              static_cast<unsigned long long>(chaos.kills),
              static_cast<unsigned long long>(chaos.failovers),
              chaos.resumed, static_cast<unsigned long long>(chaos.fenced),
              static_cast<unsigned long long>(chaos.torn));

  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"mode\": \"%s\",\n"
      "  \"journal\": {\"records\": %d, \"appends_per_sec\": %.0f, "
      "\"encode_ms\": %.3f, \"decode_ms\": %.3f},\n"
      "  \"serving\": {\"jobs\": %d, \"direct_jobs_per_sec\": %.2f, "
      "\"plane_jobs_per_sec\": %.2f, \"plane_tax_pct\": %.2f},\n"
      "  \"chaos\": {\"jobs\": %d, \"jobs_per_sec\": %.2f, "
      "\"kills\": %llu, \"failovers\": %llu, \"resumed\": %d, "
      "\"fenced_appends\": %llu, \"torn_appends\": %llu}\n"
      "}\n",
      smoke ? "smoke" : "full", journal.records, journal.appends_per_sec,
      journal.encode_ms, journal.decode_ms, serving_jobs, direct_jps,
      plane_jps, tax_pct, chaos_jobs, chaos.jobs_per_sec,
      static_cast<unsigned long long>(chaos.kills),
      static_cast<unsigned long long>(chaos.failovers), chaos.resumed,
      static_cast<unsigned long long>(chaos.fenced),
      static_cast<unsigned long long>(chaos.torn));

  const char* out_path = "BENCH_control_plane.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fputs(buf, f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
