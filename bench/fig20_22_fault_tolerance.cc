// Reproduces deliverable Figures 18-22 (and Table 1): the fault-tolerance
// evaluation. The 4-operator HelloWorld workflow (engine options per
// Table 1) is executed while the engine of operator HelloWorld1/2/3 is
// killed mid-run. Compared strategies:
//   IResReplan    - keep materialized intermediates, replan the residual
//                   workflow without the dead engine;
//   TrivialReplan - reschedule the whole workflow from scratch;
//   SubOptPlan    - no failure, but the engine the optimal plan would have
//                   used is unavailable from the start.
//
// Paper shape targets: IResReplan always beats TrivialReplan in execution
// time and the gap grows the later the failure happens; IResReplan's
// replanning is costlier than TrivialReplan's (it reconciles the completed
// sub-workflow) but stays in the millisecond range; late failures with
// IResReplan even beat the failure-free SubOptPlan.
//
// A second experiment compares recovery disciplines under the same seeded
// chaos schedule of transient faults: retry-first (the enforcer absorbs
// faults with in-place backoff before any replanning) against replan-first
// (no retry budget — every fault escalates straight to a replan). Results
// land in BENCH_fault_tolerance.json for cross-revision diffs.

#include <string>

#include "bench_util.h"
#include "chaos/chaos_scheduler.h"
#include "executor/recovering_executor.h"

namespace {

using namespace ires;

struct CaseResult {
  bool ok = false;
  double exec_seconds = 0.0;
  double replanning_ms = 0.0;
};

CaseResult RunCase(const std::string& fail_algorithm,
                   ReplanStrategy strategy) {
  auto registry = MakeStandardEngineRegistry();
  GeneratedWorkload w = MakeHelloWorldWorkflow(0.5);
  ClusterSimulator cluster(16, 4, 8.0);
  DpPlanner planner(&w.library, registry.get());
  Enforcer enforcer(registry.get(), &cluster, 99);
  bool fired = false;
  enforcer.set_fault_injector(
      [&fired, fail_algorithm](const PlanStep& step, double) {
        if (fired || step.algorithm != fail_algorithm) return false;
        fired = true;
        return true;
      });
  RecoveringExecutor recovering(&planner, &enforcer, registry.get());
  auto outcome = recovering.Run(w.graph, {}, strategy);
  CaseResult result;
  if (outcome.ok()) {
    result.ok = true;
    result.exec_seconds = outcome.value().total_execution_seconds;
    result.replanning_ms = outcome.value().replanning_ms;
  }
  return result;
}

// SubOptPlan: no failure, but the engine IReS would have used for
// `fail_algorithm` is OFF from the start.
CaseResult RunSubOptimal(const std::string& fail_algorithm) {
  auto registry = MakeStandardEngineRegistry();
  GeneratedWorkload w = MakeHelloWorldWorkflow(0.5);
  DpPlanner planner(&w.library, registry.get());
  auto optimal = planner.Plan(w.graph, {});
  CaseResult result;
  if (!optimal.ok()) return result;
  std::string engine;
  for (const PlanStep& step : optimal.value().steps) {
    if (step.algorithm == fail_algorithm) engine = step.engine;
  }
  (void)registry->SetAvailable(engine, false);
  ClusterSimulator cluster(16, 4, 8.0);
  Enforcer enforcer(registry.get(), &cluster, 99);
  RecoveringExecutor recovering(&planner, &enforcer, registry.get());
  auto outcome =
      recovering.Run(w.graph, {}, ReplanStrategy::kIresReplan);
  if (outcome.ok()) {
    result.ok = true;
    result.exec_seconds = outcome.value().total_execution_seconds;
    result.replanning_ms = outcome.value().replanning_ms;
  }
  return result;
}

// -------------------------- retry-first vs replan-first under chaos -------

/// Aggregate over many seeded chaos jobs run under one recovery discipline.
struct DisciplineResult {
  int jobs = 0;
  int succeeded = 0;
  double exec_seconds = 0.0;    // mean simulated time-to-completion
  double replanning_ms = 0.0;   // mean
  double replans = 0.0;         // mean replanning rounds
  double step_retries = 0.0;    // mean in-place retries
  double injected = 0.0;        // mean chaos injections (sanity anchor)
};

/// Runs `jobs` HelloWorld executions under a transient-fault chaos storm of
/// probability `transient_p`, recovering with a per-step retry budget of
/// `max_attempts` (1 = replan-first). Seeds are shared across disciplines
/// so both face the same schedule generator.
DisciplineResult RunDiscipline(double transient_p, int max_attempts,
                               int jobs, uint64_t seed_base) {
  DisciplineResult result;
  result.jobs = jobs;
  for (int i = 0; i < jobs; ++i) {
    auto registry = MakeStandardEngineRegistry();
    // The breaker must not amputate engines across a single job's replans.
    EngineRegistry::BreakerConfig breaker;
    breaker.base_suspension_seconds = 5.0;
    breaker.off_after_consecutive_trips = 0;
    registry->set_breaker_config(breaker);

    GeneratedWorkload w = MakeHelloWorldWorkflow(0.5);
    ClusterSimulator cluster(16, 4, 8.0);
    DpPlanner planner(&w.library, registry.get());
    Enforcer enforcer(registry.get(), &cluster, 99);
    RetryPolicy retry;
    retry.max_attempts = max_attempts;
    retry.base_backoff_seconds = 0.5;
    enforcer.set_retry_policy(retry);

    ChaosConfig config;
    config.seed = seed_base + static_cast<uint64_t>(i);
    config.transient_probability = transient_p;
    ChaosScheduler chaos(config);
    chaos.Arm(&enforcer);

    RecoveringExecutor recovering(&planner, &enforcer, registry.get());
    recovering.set_max_replans(8);
    const RecoveryOutcome out = recovering.RunFrom(
        w.graph, {}, ReplanStrategy::kIresReplan, nullptr);
    if (out.status.ok()) ++result.succeeded;
    result.exec_seconds += out.total_execution_seconds;
    result.replanning_ms += out.replanning_ms;
    result.replans += out.replans;
    result.step_retries += out.step_retries;
    result.injected += static_cast<double>(chaos.counts().total());
  }
  result.exec_seconds /= jobs;
  result.replanning_ms /= jobs;
  result.replans /= jobs;
  result.step_retries /= jobs;
  result.injected /= jobs;
  return result;
}

void AppendCaseJson(std::string* json, const char* key,
                    const CaseResult& result) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "\"%s\":{\"ok\":%s,\"exec_seconds\":%.3f,"
                "\"replanning_ms\":%.3f}",
                key, result.ok ? "true" : "false", result.exec_seconds,
                result.replanning_ms);
  *json += buffer;
}

void AppendDisciplineJson(std::string* json, const char* key,
                          const DisciplineResult& result) {
  char buffer[256];
  std::snprintf(
      buffer, sizeof(buffer),
      "\"%s\":{\"jobs\":%d,\"succeeded\":%d,\"exec_seconds\":%.3f,"
      "\"replanning_ms\":%.3f,\"replans\":%.3f,\"step_retries\":%.3f,"
      "\"injected\":%.3f}",
      key, result.jobs, result.succeeded, result.exec_seconds,
      result.replanning_ms, result.replans, result.step_retries,
      result.injected);
  *json += buffer;
}

}  // namespace

int main() {
  using namespace ires::bench;

  PrintHeader("Table 1 workflow: HelloWorld -> HelloWorld1 -> HelloWorld2 "
              "-> HelloWorld3");
  std::printf(
      "engine options: HelloWorld{Python} HelloWorld1{Spark,Python} "
      "HelloWorld2{Spark,MLLib,PostgreSQL,Hive} HelloWorld3{Spark,Python}\n");

  std::string json = "{\n  \"figures_20_22\": [\n";

  PrintHeader(
      "Figures 20-22: execution time [s] and replanning time [ms] per "
      "failure point");
  std::printf("%14s %22s %22s %18s\n", "failed op",
              "IResReplan  (t, plan)", "TrivialReplan(t, plan)",
              "SubOptPlan (t)");
  bool first = true;
  for (const char* fail : {"HelloWorld1", "HelloWorld2", "HelloWorld3"}) {
    const CaseResult ires = RunCase(fail, ReplanStrategy::kIresReplan);
    const CaseResult trivial = RunCase(fail, ReplanStrategy::kTrivialReplan);
    const CaseResult subopt = RunSubOptimal(fail);
    std::printf("%14s %12.1f %8.3fms %12.1f %8.3fms %16.1f\n", fail,
                ires.exec_seconds, ires.replanning_ms, trivial.exec_seconds,
                trivial.replanning_ms, subopt.exec_seconds);
    if (!first) json += ",\n";
    first = false;
    json += "    {\"failed_op\":\"" + std::string(fail) + "\",";
    AppendCaseJson(&json, "ires_replan", ires);
    json += ",";
    AppendCaseJson(&json, "trivial_replan", trivial);
    json += ",";
    AppendCaseJson(&json, "subopt_plan", subopt);
    json += "}";
  }
  json += "\n  ],\n  \"retry_vs_replan\": [\n";

  PrintHeader(
      "Recovery disciplines under seeded transient chaos: retry-first "
      "(3 attempts/step) vs replan-first (no retry budget)");
  std::printf("%8s | %28s | %28s\n", "p(fault)",
              "retry-first (t, replans, retries)",
              "replan-first (t, replans)");
  constexpr int kJobsPerPoint = 25;
  first = true;
  for (const double p : {0.05, 0.15, 0.30}) {
    const DisciplineResult retry_first =
        RunDiscipline(p, /*max_attempts=*/3, kJobsPerPoint, 31000);
    const DisciplineResult replan_first =
        RunDiscipline(p, /*max_attempts=*/1, kJobsPerPoint, 31000);
    std::printf("%8.2f | %10.1fs %7.2f %8.2f | %12.1fs %10.2f\n", p,
                retry_first.exec_seconds, retry_first.replans,
                retry_first.step_retries, replan_first.exec_seconds,
                replan_first.replans);
    if (!first) json += ",\n";
    first = false;
    char head[64];
    std::snprintf(head, sizeof(head),
                  "    {\"transient_probability\":%.2f,", p);
    json += head;
    AppendDisciplineJson(&json, "retry_first", retry_first);
    json += ",";
    AppendDisciplineJson(&json, "replan_first", replan_first);
    json += "}";
  }
  json += "\n  ]\n}\n";

  std::printf(
      "\nshape check: IResReplan < TrivialReplan everywhere, gap widens for "
      "later failures; IResReplan replanning costlier than TrivialReplan's "
      "but in the ms range; retry-first needs far fewer replans than "
      "replan-first at every fault rate\n");

  const char* out_path = "BENCH_fault_tolerance.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
