// Reproduces deliverable Figures 18-22 (and Table 1): the fault-tolerance
// evaluation. The 4-operator HelloWorld workflow (engine options per
// Table 1) is executed while the engine of operator HelloWorld1/2/3 is
// killed mid-run. Compared strategies:
//   IResReplan    - keep materialized intermediates, replan the residual
//                   workflow without the dead engine;
//   TrivialReplan - reschedule the whole workflow from scratch;
//   SubOptPlan    - no failure, but the engine the optimal plan would have
//                   used is unavailable from the start.
//
// Paper shape targets: IResReplan always beats TrivialReplan in execution
// time and the gap grows the later the failure happens; IResReplan's
// replanning is costlier than TrivialReplan's (it reconciles the completed
// sub-workflow) but stays in the millisecond range; late failures with
// IResReplan even beat the failure-free SubOptPlan.

#include "bench_util.h"
#include "executor/recovering_executor.h"

namespace {

using namespace ires;

struct CaseResult {
  bool ok = false;
  double exec_seconds = 0.0;
  double replanning_ms = 0.0;
};

CaseResult RunCase(const std::string& fail_algorithm,
                   ReplanStrategy strategy) {
  auto registry = MakeStandardEngineRegistry();
  GeneratedWorkload w = MakeHelloWorldWorkflow(0.5);
  ClusterSimulator cluster(16, 4, 8.0);
  DpPlanner planner(&w.library, registry.get());
  Enforcer enforcer(registry.get(), &cluster, 99);
  bool fired = false;
  enforcer.set_fault_injector(
      [&fired, fail_algorithm](const PlanStep& step, double) {
        if (fired || step.algorithm != fail_algorithm) return false;
        fired = true;
        return true;
      });
  RecoveringExecutor recovering(&planner, &enforcer, registry.get());
  auto outcome = recovering.Run(w.graph, {}, strategy);
  CaseResult result;
  if (outcome.ok()) {
    result.ok = true;
    result.exec_seconds = outcome.value().total_execution_seconds;
    result.replanning_ms = outcome.value().replanning_ms;
  }
  return result;
}

// SubOptPlan: no failure, but the engine IReS would have used for
// `fail_algorithm` is OFF from the start.
CaseResult RunSubOptimal(const std::string& fail_algorithm) {
  auto registry = MakeStandardEngineRegistry();
  GeneratedWorkload w = MakeHelloWorldWorkflow(0.5);
  DpPlanner planner(&w.library, registry.get());
  auto optimal = planner.Plan(w.graph, {});
  CaseResult result;
  if (!optimal.ok()) return result;
  std::string engine;
  for (const PlanStep& step : optimal.value().steps) {
    if (step.algorithm == fail_algorithm) engine = step.engine;
  }
  (void)registry->SetAvailable(engine, false);
  ClusterSimulator cluster(16, 4, 8.0);
  Enforcer enforcer(registry.get(), &cluster, 99);
  RecoveringExecutor recovering(&planner, &enforcer, registry.get());
  auto outcome =
      recovering.Run(w.graph, {}, ReplanStrategy::kIresReplan);
  if (outcome.ok()) {
    result.ok = true;
    result.exec_seconds = outcome.value().total_execution_seconds;
    result.replanning_ms = outcome.value().replanning_ms;
  }
  return result;
}

}  // namespace

int main() {
  using namespace ires::bench;

  PrintHeader("Table 1 workflow: HelloWorld -> HelloWorld1 -> HelloWorld2 "
              "-> HelloWorld3");
  std::printf(
      "engine options: HelloWorld{Python} HelloWorld1{Spark,Python} "
      "HelloWorld2{Spark,MLLib,PostgreSQL,Hive} HelloWorld3{Spark,Python}\n");

  PrintHeader(
      "Figures 20-22: execution time [s] and replanning time [ms] per "
      "failure point");
  std::printf("%14s %22s %22s %18s\n", "failed op",
              "IResReplan  (t, plan)", "TrivialReplan(t, plan)",
              "SubOptPlan (t)");
  for (const char* fail : {"HelloWorld1", "HelloWorld2", "HelloWorld3"}) {
    const CaseResult ires = RunCase(fail, ReplanStrategy::kIresReplan);
    const CaseResult trivial = RunCase(fail, ReplanStrategy::kTrivialReplan);
    const CaseResult subopt = RunSubOptimal(fail);
    std::printf("%14s %12.1f %8.3fms %12.1f %8.3fms %16.1f\n", fail,
                ires.exec_seconds, ires.replanning_ms, trivial.exec_seconds,
                trivial.replanning_ms, subopt.exec_seconds);
  }
  std::printf(
      "\nshape check: IResReplan < TrivialReplan everywhere, gap widens for "
      "later failures; IResReplan replanning costlier than TrivialReplan's "
      "but in the ms range\n");
  return 0;
}
