// Reproduces deliverable Figure 16: relative execution-time estimation
// error of the IReS models as a function of the number of executions.
//
//  (a) Normal operation for Wordcount/MapReduce and Pagerank/Java: error
//      starts near 100% (no knowledge) and drops below ~30% within ~50
//      runs, then keeps improving.
//  (b) An infrastructure change (HDD -> SSD halving runtimes) hits
//      Wordcount/MapReduce after 100 runs: the error spikes (to roughly
//      40-60%, still far better than the ~100% of discarding the models)
//      and re-converges within a few tens of runs.

#include "bench_util.h"
#include "profiling/profiler.h"

namespace {

using namespace ires;

// One profiling-style run with a uniformly drawn configuration; returns the
// pre-absorption relative error (the Figure 16 y-axis).
double ObserveOneRun(SimulatedEngine* engine, const std::string& algorithm,
                     OnlineEstimator* estimator, Rng* rng,
                     double max_input_gb) {
  OperatorRunRequest request;
  request.algorithm = algorithm;
  request.input_bytes = rng->Uniform(0.05, max_input_gb) * 1e9;
  request.resources.containers =
      engine->kind() == EngineKind::kCentralized
          ? 1
          : static_cast<int>(rng->UniformInt(1, 8));
  request.resources.cores = static_cast<int>(rng->UniformInt(1, 4));
  request.resources.memory_gb = rng->Uniform(1.0, 6.0);
  auto truth = engine->Run(request, rng);
  if (!truth.ok()) return -1.0;
  return estimator->Observe(Profiler::FeatureVector(request),
                            truth.value().exec_seconds);
}

void RunSeries(const std::string& label, SimulatedEngine* engine,
               const std::string& algorithm, int total_runs,
               int infra_change_at, double max_input_gb) {
  std::printf("\n-- %s --\n%8s %18s\n", label.c_str(), "runs",
              "rel. error (avg/10)");
  OnlineEstimator::Options options;
  options.window = 60;
  options.refit_interval = 5;
  options.min_samples = 5;
  OnlineEstimator estimator(options);
  Rng rng(2026);
  double bucket = 0.0;
  int bucket_n = 0;
  for (int run = 1; run <= total_runs; ++run) {
    if (run == infra_change_at) {
      engine->set_infrastructure_factor(0.5);  // the HDD -> SSD upgrade
      std::printf("%8s %18s\n", "----", "infrastructure change");
    }
    const double err =
        ObserveOneRun(engine, algorithm, &estimator, &rng, max_input_gb);
    if (err >= 0) {
      bucket += err;
      ++bucket_n;
    }
    if (run % 10 == 0 && bucket_n > 0) {
      std::printf("%8d %18.3f\n", run, bucket / bucket_n);
      bucket = 0.0;
      bucket_n = 0;
    }
  }
  engine->set_infrastructure_factor(1.0);
}

}  // namespace

int main() {
  using namespace ires::bench;
  auto registry = MakeStandardEngineRegistry();

  PrintHeader("Figure 16a: estimation error vs executions (normal)");
  RunSeries("Wordcount / MapReduce", registry->Find("MapReduce"),
            "Wordcount", 80, -1, 8.0);
  // Java's Pagerank only fits ~0.55 GB of edges in its 3 GB heap.
  RunSeries("Pagerank / Java", registry->Find("Java"), "Pagerank", 80, -1,
            0.55);

  PrintHeader("Figure 16b: infrastructure change after 100 executions");
  RunSeries("Wordcount / MapReduce (HDD->SSD at run 100)",
            registry->Find("MapReduce"), "Wordcount", 180, 100, 8.0);

  std::printf(
      "\nshape check: (a) error <0.30 after ~50 runs; (b) spike at run 100 "
      "well below the ~1.0 of starting from scratch, then re-convergence\n");
  return 0;
}
