// Reproduces deliverable Figure 14: workflow optimization (planning) time
// for the five Pegasus workflow families, ranging the workflow size from 30
// to 1000 operator nodes, with m = 4 and m = 8 alternative engines per
// operator.
//
// Paper shape targets: near-linear growth with workflow size; Montage ~2x
// the others (it is the most connected family); <10 s even at 1000 nodes.

#include <chrono>

#include "bench_util.h"
#include "workloadgen/pegasus.h"

namespace {

double PlanSeconds(const ires::GeneratedWorkload& w,
                   ires::EngineRegistry* registry) {
  ires::DpPlanner planner(&w.library, registry);
  const auto t0 = std::chrono::steady_clock::now();
  auto plan = planner.Plan(w.graph, {});
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return -1.0;
  }
  return seconds;
}

}  // namespace

int main() {
  using namespace ires;
  using namespace ires::bench;

  const PegasusType kTypes[] = {PegasusType::kMontage,
                                PegasusType::kCyberShake,
                                PegasusType::kEpigenomics,
                                PegasusType::kInspiral, PegasusType::kSipht};
  const int kSizes[] = {30, 100, 300, 1000};

  for (int engines : {4, 8}) {
    EngineRegistry registry;
    PegasusGenerator::RegisterSyntheticEngines(&registry, engines);
    PrintHeader("Figure 14: optimization time [s], " +
                std::to_string(engines) + " engines");
    std::printf("%8s", "nodes");
    for (PegasusType type : kTypes) {
      std::printf(" %12s", PegasusTypeName(type));
    }
    std::printf("\n");
    for (int size : kSizes) {
      std::printf("%8d", size);
      for (PegasusType type : kTypes) {
        PegasusGenerator generator;
        GeneratedWorkload w = generator.Generate(type, size, engines);
        std::printf(" %12.4f", PlanSeconds(w, &registry));
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nshape check: ~linear in nodes, Montage slowest, all < 10 s\n");
  return 0;
}
