// Reproduces MuSQLE Figure 6: absolute execution-time estimation error of
// each federated engine, grouped by query size (2-3, 4-5, 6-7 tables).
//
// Paper shape targets: the error grows with the number of joined tables
// (cardinality/cost mispredictions compound), with engine-specific
// magnitudes coming from each engine's systematic model bias.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "sql/tpch_queries.h"
#include "sql/musqle_optimizer.h"

int main() {
  using namespace ires;
  using namespace ires::sql;

  Catalog catalog = MakeTpchCatalog(5.0, "PostgreSQL", "MemSQL", "SparkSQL");
  auto engines = MakeStandardSqlEngines();
  MusqleOptimizer optimizer(&catalog, &engines);
  Rng rng(606);

  // error[engine][size-bucket] -> samples of |estimate - actual| seconds.
  std::map<std::string, std::map<int, std::vector<double>>> errors;
  auto bucket_of = [](size_t tables) {
    if (tables <= 3) return 0;
    if (tables <= 5) return 1;
    return 2;
  };

  for (const std::string& text : MusqleQuerySet()) {
    auto query = SqlParser::Parse(text);
    if (!query.ok()) continue;
    const int bucket = bucket_of(query.value().tables.size());
    for (const auto& [name, engine] : engines) {
      auto plan = optimizer.PlanSingleEngine(query.value(), name);
      if (!plan.ok()) continue;  // e.g. MemSQL OOM
      for (int rep = 0; rep < 10; ++rep) {
        const double actual =
            ExecutePlanGroundTruth(plan.value(), engines, &rng);
        errors[name][bucket].push_back(
            std::fabs(actual - plan.value().total_seconds));
      }
    }
  }

  std::printf(
      "\n=== MuSQLE Fig 6: |estimated - actual| execution time [s] ===\n");
  std::printf("%12s %10s %8s %8s %8s %8s\n", "engine", "tables", "mean",
              "stddev", "min", "max");
  const char* kBuckets[] = {"2-3", "4-5", "6-7"};
  for (const auto& [name, buckets] : errors) {
    for (const auto& [bucket, samples] : buckets) {
      double mean = 0, var = 0;
      for (double s : samples) mean += s;
      mean /= samples.size();
      for (double s : samples) var += (s - mean) * (s - mean);
      var /= samples.size();
      const auto [lo, hi] =
          std::minmax_element(samples.begin(), samples.end());
      std::printf("%12s %10s %8.2f %8.2f %8.2f %8.2f\n", name.c_str(),
                  kBuckets[bucket], mean, std::sqrt(var), *lo, *hi);
    }
  }
  std::printf(
      "\nshape check: error grows with query size for every engine\n");
  return 0;
}
