// Reproduces deliverable Figure 11: execution times of the graph-analytics
// workflow (Pagerank over CDR data) on single engines (Java, Hama, Spark)
// versus IReS multi-engine planning, across input sizes of 10k..100M edges.
//
// Paper shape targets: Java fastest for small graphs then OOM past ~10M
// edges; Hama fastest for medium graphs, OOM at 100M; Spark slowest to
// start but survives everything; IReS tracks the per-size winner with only
// a small planning/launch overhead.

#include "bench_util.h"

int main() {
  using namespace ires;
  using namespace ires::bench;

  auto registry = MakeStandardEngineRegistry();
  PrintHeader("Figure 11: graph analytics (Pagerank) exec time [s] vs edges");
  std::printf("%12s %10s %10s %10s %10s %14s %12s\n", "edges", "Java",
              "Hama", "Spark", "IReS", "IReS-engine", "plan[ms]");

  for (double edges : {10e3, 100e3, 1e6, 10e6, 100e6}) {
    const GeneratedWorkload w = MakeGraphAnalyticsWorkflow(edges);
    const RunOutcome java = PlanAndExecute(w, registry.get(), "Java");
    const RunOutcome hama = PlanAndExecute(w, registry.get(), "Hama");
    const RunOutcome spark = PlanAndExecute(w, registry.get(), "Spark");
    const RunOutcome ires = PlanAndExecute(w, registry.get());
    std::string chosen;
    for (const PlanStep& step : ires.plan.steps) {
      if (step.kind == PlanStep::Kind::kOperator) chosen = step.engine;
    }
    std::printf("%12.0f %10s %10s %10s %10s %14s %12.2f\n", edges,
                Cell(java).c_str(), Cell(hama).c_str(), Cell(spark).c_str(),
                Cell(ires).c_str(), chosen.c_str(), ires.planning_ms);
  }
  std::printf(
      "\nshape check: IReS must track the fastest feasible engine per row\n");
  return 0;
}
