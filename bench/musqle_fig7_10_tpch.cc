// Reproduces MuSQLE Figures 7-10: TPC-H query execution times for MuSQLE
// versus single-engine execution on SparkSQL / PostgreSQL / MemSQL.
//
//   Fig 7  - 5 GB, every table replicated in every engine: MuSQLE should
//            simply match the best single engine (no movement needed).
//   Fig 8  - 5 GB, tables placed per engine (small->PG, medium->MemSQL,
//            large->HDFS).
//   Fig 9  - 20 GB, same placement: MemSQL starts OOMing ('oom'),
//            PostgreSQL exceeds the 20-minute timeout ('to') on big
//            queries; MuSQLE beats SparkSQL by pushing local subqueries.
//   Fig 10 - 50 GB, same placement, effects amplified (speedups up to ~10x
//            on the join+filter queries).

#include <cstdio>

#include "sql/tpch_queries.h"
#include "sql/musqle_optimizer.h"

namespace {

using namespace ires;
using namespace ires::sql;

constexpr double kTimeoutSeconds = 1200.0;  // the paper's 20-minute cutoff

std::string CellFor(const Result<SqlPlan>& plan,
                    const std::map<std::string, std::unique_ptr<SqlEngine>>&
                        engines,
                    Rng* rng) {
  if (!plan.ok()) {
    // Both "working set too large" and "no feasible in-memory plan" surface
    // as the paper's out-of-memory marker.
    return plan.status().code() == StatusCode::kResourceExhausted ||
                   plan.status().code() == StatusCode::kFailedPrecondition
               ? "oom"
               : "err";
  }
  const double actual = ExecutePlanGroundTruth(plan.value(), engines, rng);
  if (actual > kTimeoutSeconds) return "to";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", actual);
  return buf;
}

void RunScale(double scale_gb, bool replicated) {
  // "*" = table replicated in every engine (the Fig. 7 setup).
  Catalog catalog =
      replicated ? MakeTpchCatalog(scale_gb, "*", "*", "*")
                 : MakeTpchCatalog(scale_gb, "PostgreSQL", "MemSQL",
                                   "SparkSQL");
  auto engines = MakeStandardSqlEngines();
  MusqleOptimizer optimizer(&catalog, &engines);
  Rng rng(707);

  std::printf("%4s %10s %12s %12s %12s %8s %8s\n", "Q", "MuSQLE",
              "SparkSQL", "PostgreSQL", "MemSQL", "moves", "engine");
  const auto queries = MusqleQuerySet();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto query = SqlParser::Parse(queries[i]);
    if (!query.ok()) continue;
    auto multi = optimizer.Optimize(query.value());
    auto spark = optimizer.PlanSingleEngine(query.value(), "SparkSQL");
    auto pg = optimizer.PlanSingleEngine(query.value(), "PostgreSQL");
    auto memsql = optimizer.PlanSingleEngine(query.value(), "MemSQL");
    const int moves =
        multi.ok() ? multi.value().CountKind(SqlPlanNode::Kind::kMove) : 0;
    std::printf("%4zu %10s %12s %12s %12s %8d %8s\n", i,
                CellFor(multi, engines, &rng).c_str(),
                CellFor(spark, engines, &rng).c_str(),
                CellFor(pg, engines, &rng).c_str(),
                CellFor(memsql, engines, &rng).c_str(), moves,
                multi.ok() ? multi.value().result_engine.c_str() : "-");
  }
}

}  // namespace

int main() {
  std::printf(
      "\n=== MuSQLE Fig 7: TPCH 5GB, all tables replicated in all engines "
      "===\n");
  RunScale(5.0, /*replicated=*/true);

  std::printf("\n=== MuSQLE Fig 8: TPCH 5GB, placed tables ===\n");
  RunScale(5.0, /*replicated=*/false);

  std::printf("\n=== MuSQLE Fig 9: TPCH 20GB, placed tables ===\n");
  RunScale(20.0, /*replicated=*/false);

  std::printf("\n=== MuSQLE Fig 10: TPCH 50GB, placed tables ===\n");
  RunScale(50.0, /*replicated=*/false);

  std::printf(
      "\nshape check: at 20/50GB MemSQL shows 'oom' and PostgreSQL 'to' on "
      "heavy queries; MuSQLE <= best single engine, with clear speedups on "
      "selective multi-store queries\n");
  return 0;
}
