// Reproduces deliverable Figure 15: workflow optimization time for the
// Montage and Epigenomics families while ranging the number of alternative
// engines per operator (m = 2, 4, 6, 8) and the workflow size.
//
// Paper shape targets: planning time grows with m (the planner is
// O(op * m^2 * k)) but even 100-node workflows with 8 engines stay within a
// couple of seconds; 10-node workflows plan in the sub-second range.

#include <chrono>

#include "bench_util.h"
#include "workloadgen/pegasus.h"

int main() {
  using namespace ires;
  using namespace ires::bench;

  const int kEngines[] = {2, 4, 6, 8};
  const int kSizes[] = {10, 30, 100, 300, 1000};

  for (PegasusType type :
       {PegasusType::kMontage, PegasusType::kEpigenomics}) {
    PrintHeader(std::string("Figure 15: optimization time [s], ") +
                PegasusTypeName(type));
    std::printf("%8s", "nodes");
    for (int m : kEngines) std::printf("  %9d-eng", m);
    std::printf("\n");
    for (int size : kSizes) {
      std::printf("%8d", size);
      for (int m : kEngines) {
        EngineRegistry registry;
        PegasusGenerator::RegisterSyntheticEngines(&registry, m);
        PegasusGenerator generator;
        GeneratedWorkload w = generator.Generate(type, size, m);
        DpPlanner planner(&w.library, &registry);
        const auto t0 = std::chrono::steady_clock::now();
        auto plan = planner.Plan(w.graph, {});
        const double seconds = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count();
        std::printf("  %13.4f", plan.ok() ? seconds : -1.0);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nshape check: grows with m; 100-node/8-engine within seconds; "
      "10-node sub-second\n");
  return 0;
}
