// Ablation / extension study: multi-objective (Pareto-frontier) planning,
// the future-work direction deliverable §2.2.3 sketches. For the text
// analytics workflow at several corpus sizes we print the full frontier of
// non-dominated (execution time, execution cost) plans the ParetoPlanner
// discovers, and verify its extremes coincide with the scalar min-time /
// min-cost plans.

#include <cstdio>

#include "engines/standard_engines.h"
#include "planner/dp_planner.h"
#include "planner/pareto_planner.h"
#include "workloadgen/asap_workflows.h"

int main() {
  using namespace ires;
  auto registry = MakeStandardEngineRegistry();

  std::printf("\n=== Pareto-frontier planning (time [s] vs cost) ===\n");
  for (double docs : {10e3, 40e3, 100e3}) {
    const GeneratedWorkload w = MakeTextAnalyticsWorkflow(docs);
    ParetoPlanner pareto(&w.library, registry.get());
    auto frontier = pareto.PlanFrontier(w.graph, {});
    if (!frontier.ok()) {
      std::fprintf(stderr, "frontier failed: %s\n",
                   frontier.status().ToString().c_str());
      return 1;
    }
    DpPlanner scalar(&w.library, registry.get());
    auto min_time = scalar.Plan(w.graph, {});
    DpPlanner::Options cost_options;
    cost_options.policy = OptimizationPolicy::MinimizeCost();
    auto min_cost = scalar.Plan(w.graph, cost_options);

    std::printf("\n--- %.0f documents: %zu frontier plans ---\n", docs,
                frontier.value().size());
    std::printf("%10s %12s  %s\n", "time[s]", "cost", "engines");
    for (const auto& fp : frontier.value()) {
      std::string engines;
      for (const std::string& e : fp.plan.EnginesUsed()) {
        if (!engines.empty()) engines += "+";
        engines += e;
      }
      std::printf("%10.1f %12.0f  %s\n", fp.seconds, fp.cost,
                  engines.c_str());
    }
    std::printf("scalar min-time metric: %.1f (frontier fastest %.1f)\n",
                min_time.ok() ? min_time.value().metric : -1.0,
                frontier.value().front().seconds);
    std::printf("scalar min-cost metric: %.0f (frontier cheapest %.0f)\n",
                min_cost.ok() ? min_cost.value().metric : -1.0,
                frontier.value().back().cost);
  }
  std::printf(
      "\nshape check: frontier extremes equal the scalar planners; interior "
      "points expose genuine time/cost trade-offs\n");
  return 0;
}
