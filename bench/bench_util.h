#ifndef IRES_BENCH_BENCH_UTIL_H_
#define IRES_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/ires_server.h"
#include "engines/standard_engines.h"
#include "workloadgen/asap_workflows.h"

namespace ires::bench {

/// Outcome of planning + executing one workflow configuration.
struct RunOutcome {
  bool ok = false;
  std::string error;
  double exec_seconds = 0.0;      // simulated
  double exec_cost = 0.0;         // #VM*cores*GB*t metric
  double planning_ms = 0.0;       // real wall clock
  ExecutionPlan plan;
};

/// Plans and executes `w` against `registry`. When `only_engine` is
/// non-empty, every other engine is marked OFF first (the single-engine
/// baselines of §4.1).
inline RunOutcome PlanAndExecute(const GeneratedWorkload& w,
                                 EngineRegistry* registry,
                                 const std::string& only_engine = "",
                                 uint64_t seed = 4711) {
  RunOutcome out;
  std::vector<std::pair<std::string, bool>> saved;
  if (!only_engine.empty()) {
    for (const std::string& name : registry->Names()) {
      saved.emplace_back(name, registry->IsAvailable(name));
      if (name != only_engine) (void)registry->SetAvailable(name, false);
    }
  }

  DpPlanner planner(&w.library, registry);
  const auto t0 = std::chrono::steady_clock::now();
  auto plan = planner.Plan(w.graph, {});
  out.planning_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  if (!plan.ok()) {
    out.error = plan.status().ToString();
  } else {
    ClusterSimulator cluster(16, 4, 8.0);
    Enforcer enforcer(registry, &cluster, seed);
    ExecutionReport report = enforcer.Execute(plan.value());
    if (report.status.ok()) {
      out.ok = true;
      out.exec_seconds = report.makespan_seconds;
      out.exec_cost = report.total_cost;
      out.plan = std::move(plan).value();
    } else {
      out.error = report.status.ToString();
    }
  }

  for (const auto& [name, was_on] : saved) {
    (void)registry->SetAvailable(name, was_on);
  }
  return out;
}

/// Prints a table cell: the time with 1 decimal, or "fail".
inline std::string Cell(const RunOutcome& out) {
  if (!out.ok) return "fail";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", out.exec_seconds);
  return buf;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace ires::bench

#endif  // IRES_BENCH_BENCH_UTIL_H_
