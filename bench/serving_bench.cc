// Open-loop serving benchmark over the work-stealing substrate: a Poisson
// arrival process drives a ~70% DAG / 30% SQL request mix through the REST
// front door at a swept offered rate, recording p50/p99/p999 latency from
// *scheduled* arrival (open-loop: client backlog counts, so saturation shows
// up as unbounded tails instead of silently shedding load), the achieved
// throughput, the measured saturation point, and the scheduler's steal rate
// per window.
//
// Two modes are swept A/B:
//   shared      one server whose TaskScheduler (N workers) runs every
//               subsystem — job execution, SQL optimization, planner fan-out
//   partitioned the pre-substrate architecture: a DAG server and a SQL
//               server with private schedulers splitting the same N workers
//               70/30, so neither stream can soak up the other's idle
//               capacity
//
// Dumps BENCH_serving.json; CI runs `serving_bench --smoke`, archives the
// file, and fails when warm_requests_per_sec regresses >20% against the
// committed baseline (bench/BENCH_serving.baseline.json).

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/rest_api.h"
#include "service/job_service.h"
#include "service/sql_service.h"
#include "sql/tpch_queries.h"
#include "threading/task_scheduler.h"

namespace {

using namespace ires;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr const char* kGraph =
    "asapServerLog,LineCount,0\n"
    "LineCount,d1,0\n"
    "d1,$$target\n";

bool RegisterLineCount(RestApi* api) {
  if (api->Handle("POST", "/apiv1/datasets/asapServerLog",
                  "Constraints.Engine.FS=HDFS\n"
                  "Execution.path=hdfs:///log\n"
                  "Optimization.size=5e8\n"
                  "Optimization.documents=1000\n")
          .code != 201) {
    return false;
  }
  if (api->Handle("POST", "/apiv1/abstractOperators/LineCount",
                  "Constraints.OpSpecification.Algorithm.name=LineCount\n")
          .code != 201) {
    return false;
  }
  if (api->Handle("POST", "/apiv1/operators/LineCount_Spark",
                  "Constraints.Engine=Spark\n"
                  "Constraints.OpSpecification.Algorithm.name=LineCount\n"
                  "Constraints.Input0.Engine.FS=HDFS\n"
                  "Constraints.Output0.Engine.FS=HDFS\n")
          .code != 201) {
    return false;
  }
  return api->Handle("POST", "/apiv1/workflows/lc", kGraph).code == 201;
}

/// Rewrites the first `> <number>` literal so every warm SQL request is a
/// different query text with the same shape (shape-cache hit, fresh job).
std::string VaryLiteral(const std::string& query, int salt) {
  const size_t gt = query.find("> ");
  if (gt == std::string::npos) return query;
  size_t end = gt + 2;
  while (end < query.size() && std::isdigit(query[end]) != 0) ++end;
  if (end == gt + 2) return query;
  return query.substr(0, gt + 2) + std::to_string(1000 + salt) +
         query.substr(end);
}

/// One serving deployment under test. Both modes run a single server (same
/// library, plan cache, refinement state and locks) and differ only in the
/// execution substrate:
///
///   shared      the server's TaskScheduler has all N workers and every
///               subsystem runs on it — jobs, SQL optimization, NSGA-II
///   partitioned the pre-substrate architecture: the job service runs on a
///               private dag_workers-thread scheduler while SQL optimization
///               and provisioning fan-outs keep the server scheduler's
///               remaining workers, so neither side can soak up the other's
///               idle capacity
struct ServingStack {
  std::unique_ptr<IresServer> server;
  std::unique_ptr<TaskScheduler> job_sched;  // null in shared mode
  std::unique_ptr<JobService> jobs;
  std::unique_ptr<RestApi> api;

  static ServingStack Make(bool shared, int workers, int dag_workers,
                           int sql_workers) {
    ServingStack s;
    IresServer::Config config;
    config.scheduler_workers = shared ? workers : sql_workers;
    // NSGA-II provisioning makes every DAG job fan out on the scheduler
    // (ParallelFor from a worker thread -> own-deque spawns -> stealable
    // work), so the bench exercises the substrate, not just dispatch.
    config.provision_resources = true;
    s.server = std::make_unique<IresServer>(config);
    JobService::Options jobs_options;
    jobs_options.workers = shared ? workers : dag_workers;
    jobs_options.queue_capacity = 512;
    if (!shared) {
      s.job_sched = std::make_unique<TaskScheduler>(dag_workers);
      jobs_options.scheduler = s.job_sched.get();
    }
    s.jobs = std::make_unique<JobService>(s.server.get(), jobs_options);
    s.api = std::make_unique<RestApi>(s.server.get(), s.jobs.get());
    return s;
  }

  bool Setup() { return RegisterLineCount(api.get()); }

  TaskScheduler::Stats SchedulerStats() const {
    TaskScheduler::Stats total = server->scheduler().stats();
    if (job_sched != nullptr) {
      const TaskScheduler::Stats job = job_sched->stats();
      total.submitted += job.submitted;
      total.executed += job.executed;
      total.rejected += job.rejected;
      total.steals += job.steals;
      total.parks += job.parks;
    }
    return total;
  }
};

/// Issues one DAG request through the async REST route and waits for the
/// job to reach a terminal state. Returns success.
bool RunDagRequest(ServingStack* stack) {
  ApiResponse submit = stack->api->Handle(
      "POST", "/apiv1/workflows/lc/execute?mode=async");
  if (submit.code != 202) return false;
  const size_t start = submit.body.find("job-");
  if (start == std::string::npos) return false;
  const std::string job_id =
      submit.body.substr(start, submit.body.find('"', start) - start);
  for (int spin = 0; spin < 400000; ++spin) {
    auto record = stack->jobs->Get(job_id);
    if (!record.ok()) return false;
    if (IsTerminal(record.value().state)) {
      return record.value().state == JobState::kSucceeded;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  return false;
}

bool RunSqlRequest(ServingStack* stack, const std::string& query, int salt) {
  return stack->api->Handle("POST", "/apiv1/sql", VaryLiteral(query, salt))
             .code == 200;
}

struct Arrival {
  double at = 0.0;  // seconds from window start
  bool is_sql = false;
  int salt = 0;
};

/// Pre-computed open-loop schedule: exponential interarrivals at `rate`,
/// ~30% SQL, fixed seed so every mode replays the identical arrival process.
std::vector<Arrival> PoissonSchedule(double rate, int count, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> gap(rate);
  std::uniform_real_distribution<double> mix(0.0, 1.0);
  std::vector<Arrival> schedule(static_cast<size_t>(count));
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    t += gap(rng);
    schedule[i].at = t;
    schedule[i].is_sql = mix(rng) < 0.3;
    schedule[i].salt = i;
  }
  return schedule;
}

struct RateResult {
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  int requests = 0;
  int errors = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double dag_p99_ms = 0.0;
  double sql_p99_ms = 0.0;
  double steal_rate = 0.0;  // steals per executed scheduler task
  uint64_t steals = 0;
  uint64_t parks = 0;
  bool saturated = false;
};

double Percentile(std::vector<double>* sorted, double q) {
  if (sorted->empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted->size() - 1) + 0.5);
  return (*sorted)[std::min(index, sorted->size() - 1)];
}

/// Runs one open-loop window against a fresh stack. The dispatcher fires
/// requests at their scheduled instants into a client pool; latency is
/// measured from the *scheduled* arrival, so dispatcher/client backlog — the
/// signature of saturation — lands in the tail instead of throttling the
/// offered load (closed-loop coordination omission).
RateResult RunWindow(ServingStack* stack, const std::string& query,
                     double rate, int count, int clients) {
  RateResult r;
  r.offered_rps = rate;
  r.requests = count;

  const std::vector<Arrival> schedule = PoissonSchedule(rate, count, 1234567);

  std::mutex mu;
  std::condition_variable cv;
  std::deque<Arrival> queue;
  bool closed = false;

  std::vector<double> latencies_ms;
  std::vector<double> dag_ms;
  std::vector<double> sql_ms;
  latencies_ms.reserve(static_cast<size_t>(count));
  std::mutex result_mu;
  std::atomic<int> errors{0};

  const TaskScheduler::Stats before = stack->SchedulerStats();
  const double start = NowSeconds() + 0.05;

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&] {
      for (;;) {
        Arrival arrival;
        {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return closed || !queue.empty(); });
          if (queue.empty()) return;
          arrival = queue.front();
          queue.pop_front();
        }
        const bool ok =
            arrival.is_sql
                ? RunSqlRequest(stack, query, arrival.salt)
                : RunDagRequest(stack);
        const double latency = NowSeconds() - (start + arrival.at);
        if (ok) {
          std::lock_guard<std::mutex> lock(result_mu);
          latencies_ms.push_back(latency * 1e3);
          (arrival.is_sql ? sql_ms : dag_ms).push_back(latency * 1e3);
        } else {
          errors.fetch_add(1);
        }
      }
    });
  }

  for (const Arrival& arrival : schedule) {
    const double fire_at = start + arrival.at;
    for (;;) {
      const double remaining = fire_at - NowSeconds();
      if (remaining <= 0.0) break;
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::min(remaining, 0.0005)));
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      queue.push_back(arrival);
    }
    cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    closed = true;
  }
  cv.notify_all();
  for (std::thread& t : pool) t.join();
  const double end = NowSeconds();

  const TaskScheduler::Stats after = stack->SchedulerStats();
  const uint64_t executed = after.executed - before.executed;
  r.steals = after.steals - before.steals;
  r.parks = after.parks - before.parks;
  r.steal_rate =
      executed > 0 ? static_cast<double>(r.steals) / executed : 0.0;

  r.errors = errors.load();
  std::sort(latencies_ms.begin(), latencies_ms.end());
  std::sort(dag_ms.begin(), dag_ms.end());
  std::sort(sql_ms.begin(), sql_ms.end());
  r.p50_ms = Percentile(&latencies_ms, 0.50);
  r.p99_ms = Percentile(&latencies_ms, 0.99);
  r.p999_ms = Percentile(&latencies_ms, 0.999);
  r.dag_p99_ms = Percentile(&dag_ms, 0.99);
  r.sql_p99_ms = Percentile(&sql_ms, 0.99);
  const double window = end - start;
  r.achieved_rps = window > 0
                       ? static_cast<double>(latencies_ms.size()) / window
                       : 0.0;
  // Saturated when the deployment visibly falls behind the offered load:
  // completions lag arrivals by >10% or any requests failed outright.
  r.saturated = r.achieved_rps < 0.9 * rate || r.errors > 0;
  return r;
}

/// Closed-loop warmup: primes the shape cache, plan cache and refined
/// models so the measured window sees steady-state (warm) service times.
void Warmup(ServingStack* stack, const std::string& query) {
  for (int i = 0; i < 6; ++i) (void)RunDagRequest(stack);
  for (int i = 0; i < 3; ++i) (void)RunSqlRequest(stack, query, 100000 + i);
}

/// Measures the sustainable warm throughput directly: `clients` closed-loop
/// threads hammer a shared stack for a fixed wall window, and the completion
/// rate is the capacity the sweep brackets. A concurrent probe — unlike a
/// serial service-time probe — prices in lock contention, the scheduler's
/// queueing behaviour and the model-refinement work that grows with every
/// completed run, all of which an open-loop deployment actually pays.
double EstimateCapacityRps(int workers, int clients,
                           const std::string& query) {
  ServingStack stack = ServingStack::Make(true, workers, workers, workers);
  if (!stack.Setup()) return 0.0;
  Warmup(&stack, query);
  std::atomic<bool> stop{false};
  std::atomic<int> completed{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(clients));
  const double probe_seconds = 2.0;
  const double start = NowSeconds();
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        const bool is_sql = (c * 131 + i) % 10 >= 7;  // ~30% SQL
        const bool ok = is_sql
                            ? RunSqlRequest(&stack, query,
                                            300000 + c * 10000 + i)
                            : RunDagRequest(&stack);
        if (ok) completed.fetch_add(1, std::memory_order_relaxed);
        if (NowSeconds() - start > probe_seconds) {
          stop.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const double elapsed = NowSeconds() - start;
  return elapsed > 0.0 ? completed.load() / elapsed : 0.0;
}

struct ModeReport {
  std::string name;
  std::vector<RateResult> sweep;
  double saturation_rps = 0.0;  // highest pre-saturation achieved rate
};

ModeReport RunMode(const std::string& name, bool shared, int workers,
                   int dag_workers, int sql_workers, const std::string& query,
                   const std::vector<double>& rates, double seconds_per_rate,
                   int clients) {
  ModeReport report;
  report.name = name;
  for (const double rate : rates) {
    // A fresh stack per rate keeps windows independent: no refinement
    // backlog or journal growth bleeds from one rate into the next.
    ServingStack stack =
        ServingStack::Make(shared, workers, dag_workers, sql_workers);
    if (!stack.Setup()) {
      std::fprintf(stderr, "stack setup failed\n");
      continue;
    }
    Warmup(&stack, query);
    const int count = std::min(
        400, std::max(60, static_cast<int>(rate * seconds_per_rate)));
    RateResult r = RunWindow(&stack, query, rate, count, clients);
    std::printf(
        "%-11s rate=%7.1f rps  achieved=%7.1f  p50=%8.2fms p99=%8.2fms "
        "(dag %7.2f / sql %7.2f)  p999=%8.2fms  steal=%.3f  errors=%d%s\n",
        name.c_str(), r.offered_rps, r.achieved_rps, r.p50_ms, r.p99_ms,
        r.dag_p99_ms, r.sql_p99_ms, r.p999_ms, r.steal_rate, r.errors,
        r.saturated ? "  [saturated]" : "");
    report.sweep.push_back(r);
    if (!r.saturated) report.saturation_rps = r.achieved_rps;
  }
  return report;
}

std::string SweepJson(const ModeReport& report) {
  std::string json = "    {\"mode\": \"" + report.name + "\",\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "     \"saturation_rps\": %.1f,\n",
                report.saturation_rps);
  json += buf;
  json += "     \"sweep\": [\n";
  for (size_t i = 0; i < report.sweep.size(); ++i) {
    const RateResult& r = report.sweep[i];
    char row[320];
    std::snprintf(row, sizeof(row),
                  "      {\"offered_rps\": %.1f, \"achieved_rps\": %.1f, "
                  "\"requests\": %d, \"errors\": %d, \"p50_ms\": %.2f, "
                  "\"p99_ms\": %.2f, \"p999_ms\": %.2f, "
                  "\"dag_p99_ms\": %.2f, \"sql_p99_ms\": %.2f, "
                  "\"steal_rate\": %.3f, \"steals\": %llu, \"parks\": %llu, "
                  "\"saturated\": %s}%s",
                  r.offered_rps, r.achieved_rps, r.requests, r.errors,
                  r.p50_ms, r.p99_ms, r.p999_ms, r.dag_p99_ms, r.sql_p99_ms,
                  r.steal_rate,
                  static_cast<unsigned long long>(r.steals),
                  static_cast<unsigned long long>(r.parks),
                  r.saturated ? "true" : "false",
                  i + 1 < report.sweep.size() ? ",\n" : "\n");
    json += row;
  }
  json += "     ]}";
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  int workers = static_cast<int>(std::thread::hardware_concurrency());
  if (workers < 4) workers = 4;
  if (workers > 8) workers = 8;
  const int dag_workers = std::max(1, (workers * 7 + 5) / 10);
  const int sql_workers = std::max(1, workers - dag_workers);
  const int clients = workers * 3;

  const std::string query = sql::MusqleQuerySet()[13];  // 2-table filtered

  std::printf("calibrating capacity (workers=%d)...\n", workers);
  double capacity = EstimateCapacityRps(workers, clients, query);
  if (capacity <= 0.0) {
    std::fprintf(stderr, "calibration failed\n");
    return 1;
  }
  std::printf("estimated capacity ~%.1f rps\n", capacity);

  // The sweep brackets the estimated capacity so the top rate demonstrably
  // saturates and the measured saturation point is interior to the grid.
  std::vector<double> fractions =
      smoke ? std::vector<double>{0.3, 0.6, 1.2}
            : std::vector<double>{0.25, 0.45, 0.65, 0.85, 1.3};
  std::vector<double> rates;
  for (const double f : fractions) rates.push_back(std::max(2.0, capacity * f));
  const double seconds_per_rate = smoke ? 1.0 : 3.0;

  ModeReport shared_report =
      RunMode("shared", true, workers, dag_workers, sql_workers, query, rates,
              seconds_per_rate, clients);
  ModeReport partitioned_report =
      RunMode("partitioned", false, workers, dag_workers, sql_workers, query,
              rates, seconds_per_rate, clients);

  // A/B verdict: p99 at the highest rate both deployments survived.
  double ab_rate = 0.0, shared_p99 = 0.0, partitioned_p99 = 0.0;
  for (size_t i = 0; i < shared_report.sweep.size() &&
                     i < partitioned_report.sweep.size();
       ++i) {
    if (!shared_report.sweep[i].saturated &&
        !partitioned_report.sweep[i].saturated) {
      ab_rate = shared_report.sweep[i].offered_rps;
      shared_p99 = shared_report.sweep[i].p99_ms;
      partitioned_p99 = partitioned_report.sweep[i].p99_ms;
    }
  }
  const bool shared_wins = shared_p99 > 0.0 && shared_p99 <= partitioned_p99;
  if (ab_rate > 0.0) {
    std::printf(
        "A/B at %.1f rps: shared p99=%.2fms vs partitioned p99=%.2fms -> %s\n",
        ab_rate, shared_p99, partitioned_p99,
        shared_wins ? "shared wins" : "partitioned wins");
  }

  // The CI regression metric: best achieved warm throughput of the shared
  // deployment across the sweep.
  double warm_rps = 0.0;
  for (const RateResult& r : shared_report.sweep) {
    warm_rps = std::max(warm_rps, r.achieved_rps);
  }

  std::string json = "{\n  \"benchmark\": \"serving\",\n";
  json += smoke ? "  \"mode\": \"smoke\",\n" : "  \"mode\": \"full\",\n";
  char head[320];
  std::snprintf(head, sizeof(head),
                "  \"workers\": %d,\n  \"dag_workers\": %d,\n"
                "  \"sql_workers\": %d,\n  \"clients\": %d,\n"
                "  \"mix\": {\"dag\": 0.7, \"sql\": 0.3},\n"
                "  \"estimated_capacity_rps\": %.1f,\n"
                "  \"warm_requests_per_sec\": %.1f,\n",
                workers, dag_workers, sql_workers, clients, capacity,
                warm_rps);
  json += head;
  char ab[256];
  std::snprintf(ab, sizeof(ab),
                "  \"ab\": {\"rate_rps\": %.1f, \"shared_p99_ms\": %.2f, "
                "\"partitioned_p99_ms\": %.2f, \"shared_wins\": %s},\n",
                ab_rate, shared_p99, partitioned_p99,
                shared_wins ? "true" : "false");
  json += ab;
  json += "  \"modes\": [\n";
  json += SweepJson(shared_report);
  json += ",\n";
  json += SweepJson(partitioned_report);
  json += "\n  ]\n}\n";

  const char* out_path = "BENCH_serving.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
