// SQL serving bench: throughput of the /apiv1/sql front door over the
// MuSQLE TPC-H query set, comparing the cold path (parse + DPccp optimize +
// lower + DP plan) against the warm path (shape cache + plan cache), plus
// serial-vs-parallel DPccp enumeration on the widest joins. Dumps
// BENCH_sql_serving.json; CI runs `sql_serving_bench --smoke` and archives
// the file.

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/rest_api.h"
#include "service/sql_service.h"
#include "sql/dpccp.h"
#include "sql/musqle_optimizer.h"
#include "sql/sql_parser.h"
#include "sql/tpch_queries.h"
#include "threading/task_scheduler.h"

namespace {

using namespace ires;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Rewrites the first `> <number>` literal of a filtered query so every
/// warm request is a *different* query text with the *same* shape.
std::string VaryLiteral(const std::string& query, int salt) {
  const size_t gt = query.find("> ");
  if (gt == std::string::npos) return query;
  size_t end = gt + 2;
  while (end < query.size() && std::isdigit(query[end]) != 0) ++end;
  if (end == gt + 2) return query;
  return query.substr(0, gt + 2) + std::to_string(1000 + salt) +
         query.substr(end);
}

struct QueryResult {
  std::string name;
  int tables = 0;
  /// Prepare path (parse + DPccp optimize + lower), isolated from
  /// execution: cold = first sighting of the shape, warm = shape-cache hit
  /// on a different-literal resubmission.
  double prepare_cold_ms = 0.0;
  double prepare_warm_us = 0.0;
  double prepare_speedup = 0.0;
  /// End-to-end POST /apiv1/sql throughput on the warm path. This includes
  /// the simulated execution and the post-run model-refinement refits, so
  /// it reflects what a serving deployment sustains, not just cache math.
  double warm_requests_per_sec = 0.0;
};

QueryResult RunQuery(const std::string& name, const std::string& query,
                     int warm_iters) {
  QueryResult r;
  r.name = name;

  IresServer server;
  RestApi api(&server);
  SqlService prepare_svc(&server);

  std::vector<Diagnostic> diagnostics;
  const double p0 = NowSeconds();
  auto cold_prep = prepare_svc.Prepare(query, &diagnostics);
  r.prepare_cold_ms = (NowSeconds() - p0) * 1e3;
  if (!cold_prep.ok()) {
    std::fprintf(stderr, "%s prepare failed: %s\n", name.c_str(),
                 cold_prep.status().message().c_str());
    return r;
  }
  const double w0 = NowSeconds();
  for (int i = 0; i < warm_iters; ++i) {
    (void)prepare_svc.Prepare(VaryLiteral(query, i), &diagnostics);
  }
  r.prepare_warm_us = (NowSeconds() - w0) * 1e6 / warm_iters;
  r.prepare_speedup =
      r.prepare_warm_us > 0 ? r.prepare_cold_ms * 1e3 / r.prepare_warm_us
                            : 0.0;

  // End-to-end throughput over a bounded burst: each run feeds observations
  // back into the refinement layer, whose periodic refits dominate past a
  // few dozen runs — a longer loop measures refit cost, not serving.
  const int e2e_iters = warm_iters < 30 ? warm_iters : 30;
  ApiResponse first = api.Handle("POST", "/apiv1/sql", query);
  if (first.code != 200) {
    std::fprintf(stderr, "%s request failed (%d): %s\n", name.c_str(),
                 first.code, first.body.c_str());
    return r;
  }
  const double e0 = NowSeconds();
  for (int i = 0; i < e2e_iters; ++i) {
    ApiResponse warm = api.Handle("POST", "/apiv1/sql", VaryLiteral(query, i));
    if (warm.code != 200) {
      std::fprintf(stderr, "%s warm request failed: %s\n", name.c_str(),
                   warm.body.c_str());
      return r;
    }
  }
  r.warm_requests_per_sec = e2e_iters / (NowSeconds() - e0);

  auto parsed = sql::SqlParser::Parse(query);
  if (parsed.ok()) r.tables = static_cast<int>(parsed.value().tables.size());
  return r;
}

struct EnumerationResult {
  int vertices = 0;
  long long pairs = 0;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  double speedup = 0.0;
};

/// Times raw csg-cmp-pair enumeration serially vs. fanned out over the
/// scheduler on an n-vertex clique (the emitted sequences are bit-identical;
/// only the wall clock moves). With a trivial emit callback this measures
/// the *cost envelope* of the bit-identity guarantee — per-seed buckets and
/// the ordered replay are pure overhead when emission itself is free, and a
/// clique maximally skews the per-seed work toward the lowest seed. The
/// ratio column is what the guarantee costs at each width.
EnumerationResult RunEnumeration(int n, int iters, TaskScheduler* scheduler) {
  EnumerationResult r;
  r.vertices = n;
  std::vector<uint32_t> adjacency(n, 0);
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a != b) adjacency[a] |= 1u << b;
    }
  }

  const double s0 = NowSeconds();
  for (int i = 0; i < iters; ++i) {
    long long pairs = 0;
    sql::EnumerateCsgCmpPairs(adjacency, n,
                              [&](uint32_t, uint32_t) { ++pairs; });
    r.pairs = pairs;
  }
  r.serial_ms = (NowSeconds() - s0) * 1e3 / iters;

  const double p0 = NowSeconds();
  for (int i = 0; i < iters; ++i) {
    long long pairs = 0;
    sql::EnumerateCsgCmpPairsParallel(adjacency, n, scheduler,
                                      [&](uint32_t, uint32_t) { ++pairs; });
    r.pairs = pairs;
  }
  r.parallel_ms = (NowSeconds() - p0) * 1e3 / iters;
  r.speedup = r.parallel_ms > 0 ? r.serial_ms / r.parallel_ms : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int warm_iters = smoke ? 20 : 200;
  const int enum_iters = smoke ? 5 : 50;

  const std::vector<std::string> queries = sql::MusqleQuerySet();
  struct Pick {
    const char* name;
    int index;
  };
  // Filtered queries only (VaryLiteral needs a literal to rewrite): from
  // the 2-table Q13 up to the 6-table Q16.
  std::vector<Pick> picks = {{"Q13", 13}, {"Q15", 15}, {"Q16", 16}};
  if (smoke) picks = {{"Q13", 13}};

  std::string json = "{\n  \"benchmark\": \"sql_serving\",\n";
  json += smoke ? "  \"mode\": \"smoke\",\n" : "  \"mode\": \"full\",\n";
  json += "  \"queries\": [\n";
  bool first = true;
  for (const Pick& pick : picks) {
    const QueryResult r = RunQuery(pick.name, queries[pick.index], warm_iters);
    std::printf(
        "%-4s tables=%d prepare cold=%7.2fms warm=%7.2fus (x%.0f)  "
        "serve=%8.1f req/s\n",
        r.name.c_str(), r.tables, r.prepare_cold_ms, r.prepare_warm_us,
        r.prepare_speedup, r.warm_requests_per_sec);
    if (!first) json += ",\n";
    first = false;
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "    {\"query\": \"%s\", \"tables\": %d, "
                  "\"prepare_cold_ms\": %.3f, \"prepare_warm_us\": %.2f, "
                  "\"prepare_speedup\": %.1f, "
                  "\"warm_requests_per_sec\": %.1f}",
                  r.name.c_str(), r.tables, r.prepare_cold_ms,
                  r.prepare_warm_us, r.prepare_speedup,
                  r.warm_requests_per_sec);
    json += buf;
  }
  json += "\n  ],\n";

  // Parallel-DPccp overhead sweep over clique join graphs past TPC-H size
  // (worst case: trivial emit cost, maximal per-seed skew — the lowest seed
  // owns every subgraph containing vertex 0).
  TaskScheduler scheduler(4);
  const std::vector<int> widths = smoke ? std::vector<int>{10}
                                        : std::vector<int>{8, 10, 12, 14};
  json += "  \"enumeration\": [\n";
  first = true;
  for (const int n : widths) {
    const EnumerationResult e = RunEnumeration(n, enum_iters, &scheduler);
    std::printf("dpccp clique n=%-2d pairs=%-9lld serial=%8.2fms "
                "parallel=%8.2fms  x%.2f\n",
                e.vertices, e.pairs, e.serial_ms, e.parallel_ms, e.speedup);
    if (!first) json += ",\n";
    first = false;
    char ebuf[224];
    std::snprintf(ebuf, sizeof(ebuf),
                  "    {\"vertices\": %d, \"pairs\": %lld, "
                  "\"serial_ms\": %.3f, \"parallel_ms\": %.3f, "
                  "\"speedup\": %.2f}",
                  e.vertices, e.pairs, e.serial_ms, e.parallel_ms, e.speedup);
    json += ebuf;
  }
  json += "\n  ]\n";
  json += "}\n";

  const char* out_path = "BENCH_sql_serving.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
