// Google-benchmark micro-benchmarks for the IReS hot paths: metadata tree
// matching, operator-library lookup, DP planning at several scales, NSGA-II
// provisioning and MuSQLE join enumeration. These complement the
// figure-reproduction binaries with statistically robust latency numbers.

#include <benchmark/benchmark.h>

#include "engines/standard_engines.h"
#include "planner/dp_planner.h"
#include "provisioning/resource_provisioner.h"
#include "sql/musqle_optimizer.h"
#include "workloadgen/asap_workflows.h"
#include "workloadgen/pegasus.h"

namespace {

using namespace ires;

void BM_TreeMatch(benchmark::State& state) {
  const int leaves = static_cast<int>(state.range(0));
  MetadataTree pattern, concrete;
  for (int i = 0; i < leaves; ++i) {
    const std::string path =
        "Constraints.field" + std::to_string(i) + ".sub";
    pattern.Set(path, "v" + std::to_string(i));
    concrete.Set(path, "v" + std::to_string(i));
    concrete.Set("Constraints.extra" + std::to_string(i), "x");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatchTrees(pattern, concrete).matched);
  }
  state.SetComplexityN(leaves);
}
BENCHMARK(BM_TreeMatch)->Range(4, 256)->Complexity(benchmark::oN);

void BM_LibraryLookup(benchmark::State& state) {
  OperatorLibrary library;
  for (int i = 0; i < 200; ++i) {
    MetadataTree meta;
    meta.Set("Constraints.Engine", "Eng" + std::to_string(i % 8));
    meta.Set("Constraints.OpSpecification.Algorithm.name",
             "algo" + std::to_string(i % 40));
    (void)library.AddMaterialized(
        MaterializedOperator("op" + std::to_string(i), meta));
  }
  MetadataTree abstract_meta;
  abstract_meta.Set("Constraints.OpSpecification.Algorithm.name", "algo7");
  AbstractOperator abstract("probe", abstract_meta);
  for (auto _ : state) {
    benchmark::DoNotOptimize(library.FindMaterializedOperators(abstract));
  }
}
BENCHMARK(BM_LibraryLookup);

void BM_PlanPegasus(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const int engines = static_cast<int>(state.range(1));
  PegasusGenerator generator;
  GeneratedWorkload w =
      generator.Generate(PegasusType::kMontage, nodes, engines);
  EngineRegistry registry;
  PegasusGenerator::RegisterSyntheticEngines(&registry, engines);
  DpPlanner planner(&w.library, &registry);
  for (auto _ : state) {
    auto plan = planner.Plan(w.graph, {});
    benchmark::DoNotOptimize(plan.ok());
  }
}
BENCHMARK(BM_PlanPegasus)
    ->Args({30, 4})
    ->Args({100, 4})
    ->Args({300, 4})
    ->Args({100, 8});

void BM_PlanTextAnalytics(benchmark::State& state) {
  auto registry = MakeStandardEngineRegistry();
  const GeneratedWorkload w = MakeTextAnalyticsWorkflow(20e3);
  DpPlanner planner(&w.library, registry.get());
  for (auto _ : state) {
    auto plan = planner.Plan(w.graph, {});
    benchmark::DoNotOptimize(plan.ok());
  }
}
BENCHMARK(BM_PlanTextAnalytics);

void BM_Nsga2Provisioning(benchmark::State& state) {
  auto registry = MakeStandardEngineRegistry();
  const SimulatedEngine* spark = registry->Find("Spark");
  NsgaResourceProvisioner::Limits limits;
  Nsga2::Options ga;
  ga.population = 24;
  ga.generations = 20;
  NsgaResourceProvisioner provisioner(limits, ga);
  OperatorRunRequest request;
  request.algorithm = "TF_IDF";
  request.input_bytes = 1e9;
  request.resources = spark->default_resources();
  for (auto _ : state) {
    benchmark::DoNotOptimize(provisioner.Advise(
        *spark, request, OptimizationPolicy::MinimizeTime()));
  }
}
BENCHMARK(BM_Nsga2Provisioning);

void BM_MusqleOptimize(benchmark::State& state) {
  using namespace ires::sql;
  Catalog catalog = MakeTpchCatalog(5.0, "PostgreSQL", "MemSQL", "SparkSQL");
  auto engines = MakeStandardSqlEngines();
  MusqleOptimizer optimizer(&catalog, &engines);
  auto query = SqlParser::Parse(
      "SELECT c_name, o_orderdate FROM part, partsupp, lineitem, orders, "
      "customer, nation WHERE p_partkey = ps_partkey AND "
      "c_nationkey = n_nationkey AND l_partkey = p_partkey AND "
      "o_custkey = c_custkey AND o_orderkey = l_orderkey AND "
      "p_retailprice > 2090 AND n_name = 'GERMANY'");
  for (auto _ : state) {
    auto plan = optimizer.Optimize(query.value());
    benchmark::DoNotOptimize(plan.ok());
  }
}
BENCHMARK(BM_MusqleOptimize);

}  // namespace

BENCHMARK_MAIN();
