// Reproduces deliverable Figure 12: execution times of the text-analytics
// workflow (tf-idf -> k-means) on single engines (scikit-learn, Spark/MLlib)
// versus IReS, across corpus sizes.
//
// Paper shape targets: scikit wins below ~10k documents; between ~10k and
// ~40k IReS picks the *hybrid* plan (tf-idf on scikit, k-means on Spark,
// with an automatically inserted move/transform) and beats the best single
// engine by up to ~30%; beyond that everything runs on Spark.

#include "bench_util.h"

int main() {
  using namespace ires;
  using namespace ires::bench;

  auto registry = MakeStandardEngineRegistry();
  PrintHeader(
      "Figure 12: text analytics (tf-idf + k-means) exec time [s] vs docs");
  std::printf("%10s %10s %10s %10s %22s %10s\n", "documents", "scikit",
              "Spark", "IReS", "IReS plan", "gain");

  for (double docs : {1e3, 5e3, 10e3, 20e3, 30e3, 40e3, 60e3, 100e3, 200e3}) {
    const GeneratedWorkload w = MakeTextAnalyticsWorkflow(docs);
    const RunOutcome scikit = PlanAndExecute(w, registry.get(), "scikit");
    const RunOutcome spark = PlanAndExecute(w, registry.get(), "Spark");
    const RunOutcome ires = PlanAndExecute(w, registry.get());

    std::string tfidf_engine, kmeans_engine;
    for (const PlanStep& step : ires.plan.steps) {
      if (step.algorithm == "TF_IDF") tfidf_engine = step.engine;
      if (step.algorithm == "kmeans") kmeans_engine = step.engine;
    }
    const double best_single =
        std::min(scikit.ok ? scikit.exec_seconds : 1e18,
                 spark.ok ? spark.exec_seconds : 1e18);
    char gain[32] = "-";
    if (ires.ok && best_single < 1e18) {
      std::snprintf(gain, sizeof(gain), "%+.0f%%",
                    100.0 * (best_single - ires.exec_seconds) / best_single);
    }
    std::printf("%10.0f %10s %10s %10s %10s/%-11s %10s\n", docs,
                Cell(scikit).c_str(), Cell(spark).c_str(), Cell(ires).c_str(),
                tfidf_engine.c_str(), kmeans_engine.c_str(), gain);
  }
  std::printf(
      "\nshape check: hybrid scikit/Spark plan should appear for mid sizes "
      "with positive gain\n");
  return 0;
}
