// Ablation: DPccp neighborhood-expansion enumeration versus naive submask
// enumeration with connectivity filtering in the MuSQLE optimizer. DPccp
// touches only valid csg-cmp pairs, so its advantage grows on sparse join
// graphs (chains), where the 3^n submask walk wastes most of its work.

#include <chrono>
#include <cstdio>

#include "sql/dpccp.h"
#include "sql/musqle_optimizer.h"

namespace {

using namespace ires;
using namespace ires::sql;

// A chain query over n synthetic tables t0 -> t1 -> ... joined on shared
// keys.
Query ChainQuery(int n) {
  Query q;
  for (int i = 0; i < n; ++i) q.tables.push_back("t" + std::to_string(i));
  for (int i = 0; i + 1 < n; ++i) {
    JoinPredicate join;
    join.left = {"t" + std::to_string(i), "k" + std::to_string(i)};
    join.right = {"t" + std::to_string(i + 1), "k" + std::to_string(i)};
    q.joins.push_back(join);
  }
  return q;
}

Catalog ChainCatalog(int n) {
  Catalog catalog;
  for (int i = 0; i < n; ++i) {
    TableDef t;
    t.name = "t" + std::to_string(i);
    t.engine = i % 2 == 0 ? "SparkSQL" : "MemSQL";
    t.rows = 1e5 * (i + 1);
    t.row_bytes = 100;
    if (i > 0) t.columns.push_back({"k" + std::to_string(i - 1), 1e4});
    t.columns.push_back({"k" + std::to_string(i), 1e4});
    (void)catalog.AddTable(std::move(t));
  }
  return catalog;
}

double OptimizeSeconds(const Catalog& catalog, const Query& query,
                       MusqleOptimizer::Enumeration enumeration,
                       int repeats) {
  auto engines = MakeStandardSqlEngines();
  MusqleOptimizer::Options options;
  options.enumeration = enumeration;
  MusqleOptimizer optimizer(&catalog, &engines, options);
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < repeats; ++r) {
    auto plan = optimizer.Optimize(query);
    if (!plan.ok()) return -1.0;
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count() /
         repeats;
}

}  // namespace

int main() {
  std::printf(
      "\n=== Ablation: csg-cmp enumeration strategy (chain queries) ===\n");
  std::printf("%8s %12s %14s %14s %14s %8s\n", "tables", "csg-cmp",
              "submask[s]", "dpccp[s]", "leftdeep[s]", "speedup");
  for (int n : {4, 8, 12, 16}) {
    const Query query = ChainQuery(n);
    const Catalog catalog = ChainCatalog(n);
    // Count the true pair population for context.
    std::vector<uint32_t> adjacency(n, 0);
    for (int i = 0; i + 1 < n; ++i) {
      adjacency[i] |= 1u << (i + 1);
      adjacency[i + 1] |= 1u << i;
    }
    int pairs = 0;
    EnumerateCsgCmpPairs(adjacency, n, [&](uint32_t, uint32_t) { ++pairs; });

    const int repeats = n <= 8 ? 50 : 5;
    const double submask = OptimizeSeconds(
        catalog, query, MusqleOptimizer::Enumeration::kSubmask, repeats);
    const double dpccp = OptimizeSeconds(
        catalog, query, MusqleOptimizer::Enumeration::kDpccp, repeats);
    const double left_deep = OptimizeSeconds(
        catalog, query, MusqleOptimizer::Enumeration::kLeftDeep, repeats);
    std::printf("%8d %12d %14.5f %14.5f %14.5f %7.1fx\n", n, pairs, submask,
                dpccp, left_deep, submask / dpccp);
  }
  std::printf(
      "\nshape check: both agree on plans (tested); dpccp pulls ahead as "
      "the 3^n submask space outgrows the O(pairs) population\n");
  return 0;
}
