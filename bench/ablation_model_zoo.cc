// Ablation: the estimation-model menu. IReS trains every WEKA-style model
// family per (operator, engine) metric and keeps the cross-validation
// winner (deliverable §2.2.1). This bench profiles three operators on
// their engines and reports each family's CV RMSE, showing that no single
// family wins everywhere — the justification for CV-based selection.

#include <cstdio>

#include "engines/standard_engines.h"
#include "modeling/model_selection.h"
#include "profiling/profiler.h"

int main() {
  using namespace ires;

  auto registry = MakeStandardEngineRegistry();
  struct Case {
    const char* engine;
    const char* algorithm;
    double max_gb;
  };
  const Case cases[] = {
      {"MapReduce", "Wordcount", 8.0},
      {"Spark", "Pagerank", 3.0},
      {"Java", "Pagerank", 0.5},
  };

  for (const Case& c : cases) {
    SimulatedEngine* engine = registry->Find(c.engine);
    Profiler profiler(engine, 909);
    Profiler::Sweep sweep;
    for (int i = 1; i <= 8; ++i) {
      sweep.input_bytes.push_back(c.max_gb * 1e9 * i / 8.0);
    }
    sweep.resources = {{1, 1, 2.0}, {2, 2, 2.0}, {4, 2, 2.0},
                       {8, 2, 2.0}, {8, 4, 4.0}};
    const auto records = profiler.RunSweep(c.algorithm, sweep);

    Matrix x;
    Vector y;
    for (const ProfileRecord& record : records) {
      x.AppendRow(record.features);
      y.push_back(record.exec_seconds);
    }
    CrossValidationSelector selector(5);
    SelectionReport report;
    auto model = selector.SelectAndFit(x, y, {}, &report);
    std::printf("\n=== %s / %s (%zu profiling runs) ===\n", c.algorithm,
                c.engine, records.size());
    if (!model.ok()) {
      std::printf("selection failed: %s\n",
                  model.status().ToString().c_str());
      continue;
    }
    for (const auto& [name, rmse] : report.per_model_rmse) {
      std::printf("  %-28s cv-rmse %10.3f %s\n", name.c_str(), rmse,
                  name == report.best_model ? "<- selected" : "");
    }
  }
  std::printf(
      "\nshape check: the winning family differs across operators/engines, "
      "so per-pair CV selection beats any fixed choice\n");
  return 0;
}
