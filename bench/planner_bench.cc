// Planner hot-path bench: measures DP planning throughput (plans/sec)
// across Pegasus DAG shapes (deep chains vs. wide fans), workflow sizes
// and operator-library sizes (the paper's m), comparing a cold candidate
// cache (fresh PlannerContext per plan) against the warm repeated-workflow
// path (one shared context, as the server runs it). Dumps the grid to
// BENCH_planner.json; CI runs `planner_bench --smoke` and archives the
// file. The acceptance bar for the memoized candidate index is
// repeated_workflow.warm_speedup >= 3.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "planner/dp_planner.h"
#include "planner/planner_context.h"
#include "workloadgen/pegasus.h"

namespace {

using namespace ires;

struct ScenarioResult {
  std::string workflow;
  int operators = 0;
  int engines_per_operator = 0;
  int plan_steps = 0;
  int iterations = 0;
  double cold_plans_per_sec = 0.0;
  double warm_plans_per_sec = 0.0;
  double warm_speedup = 0.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ScenarioResult RunScenario(PegasusType type, int operators, int m,
                           int cold_iters, int warm_iters) {
  PegasusGenerator gen(1234);
  GeneratedWorkload w = gen.Generate(type, operators, m);
  EngineRegistry registry;
  PegasusGenerator::RegisterSyntheticEngines(&registry, m);

  DpPlanner::Options options;
  ScenarioResult result;
  result.workflow = PegasusTypeName(type);
  result.operators = operators;
  result.engines_per_operator = m;
  result.iterations = warm_iters;

  // Cold: every plan resolves candidates from scratch, as a process that
  // plans each workflow exactly once would.
  const double cold_start = Now();
  for (int i = 0; i < cold_iters; ++i) {
    PlannerContext context(&w.library, &registry);
    DpPlanner planner(&w.library, &registry, &context);
    auto plan = planner.Plan(w.graph, options);
    if (!plan.ok()) {
      std::fprintf(stderr, "cold plan failed (%s): %s\n",
                   result.workflow.c_str(), plan.status().ToString().c_str());
      std::exit(1);
    }
    result.plan_steps = static_cast<int>(plan.value().steps.size());
  }
  const double cold_elapsed = Now() - cold_start;

  // Warm: one shared context across repeated plans of the same workflow —
  // the server's steady state. One untimed plan populates the index.
  PlannerContext context(&w.library, &registry);
  DpPlanner planner(&w.library, &registry, &context);
  (void)planner.Plan(w.graph, options);
  const double warm_start = Now();
  for (int i = 0; i < warm_iters; ++i) {
    auto plan = planner.Plan(w.graph, options);
    if (!plan.ok()) {
      std::fprintf(stderr, "warm plan failed (%s): %s\n",
                   result.workflow.c_str(), plan.status().ToString().c_str());
      std::exit(1);
    }
  }
  const double warm_elapsed = Now() - warm_start;

  result.cold_plans_per_sec = cold_iters / cold_elapsed;
  result.warm_plans_per_sec = warm_iters / warm_elapsed;
  result.warm_speedup = result.warm_plans_per_sec / result.cold_plans_per_sec;
  const PlannerContext::Stats stats = context.stats();
  result.cache_hits = stats.hits;
  result.cache_misses = stats.misses;
  return result;
}

void AppendScenarioJson(std::string* out, const ScenarioResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    {\"workflow\": \"%s\", \"operators\": %d, "
                "\"engines_per_operator\": %d, \"plan_steps\": %d, "
                "\"iterations\": %d, \"cold_plans_per_sec\": %.1f, "
                "\"warm_plans_per_sec\": %.1f, \"warm_speedup\": %.2f, "
                "\"cache_hits\": %llu, \"cache_misses\": %llu}",
                r.workflow.c_str(), r.operators, r.engines_per_operator,
                r.plan_steps, r.iterations, r.cold_plans_per_sec,
                r.warm_plans_per_sec, r.warm_speedup,
                static_cast<unsigned long long>(r.cache_hits),
                static_cast<unsigned long long>(r.cache_misses));
  *out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int cold_iters = smoke ? 3 : 20;
  const int warm_iters = smoke ? 15 : 200;

  // Deep chains (Epigenomics), dense fan-in/out (Montage) and a wide fan
  // (Sipht), each at two sizes and two library sizes.
  struct Scenario {
    PegasusType type;
    int operators;
    int m;
  };
  std::vector<Scenario> grid;
  if (smoke) {
    grid = {{PegasusType::kEpigenomics, 24, 8}};
  } else {
    for (PegasusType type : {PegasusType::kEpigenomics, PegasusType::kMontage,
                             PegasusType::kSipht}) {
      for (int operators : {24, 64}) {
        for (int m : {4, 12}) grid.push_back({type, operators, m});
      }
    }
  }

  std::string json = "{\n  \"benchmark\": \"planner_candidate_cache\",\n";
  json += smoke ? "  \"mode\": \"smoke\",\n" : "  \"mode\": \"full\",\n";
  json += "  \"scenarios\": [\n";
  bool first = true;
  for (const Scenario& s : grid) {
    const ScenarioResult r =
        RunScenario(s.type, s.operators, s.m, cold_iters, warm_iters);
    std::printf("%-12s ops=%-3d m=%-3d cold=%8.1f/s warm=%8.1f/s  x%.2f\n",
                r.workflow.c_str(), r.operators, r.engines_per_operator,
                r.cold_plans_per_sec, r.warm_plans_per_sec, r.warm_speedup);
    if (!first) json += ",\n";
    first = false;
    AppendScenarioJson(&json, r);
  }
  json += "\n  ],\n";

  // The repeated-workflow scenario the candidate index targets: the same
  // chain-heavy workflow planned over and over (plan-per-job, cache-on).
  const ScenarioResult repeated =
      RunScenario(PegasusType::kEpigenomics, smoke ? 24 : 64, smoke ? 8 : 12,
                  cold_iters, warm_iters);
  std::printf("repeated     ops=%-3d m=%-3d cold=%8.1f/s warm=%8.1f/s  x%.2f\n",
              repeated.operators, repeated.engines_per_operator,
              repeated.cold_plans_per_sec, repeated.warm_plans_per_sec,
              repeated.warm_speedup);
  json += "  \"repeated_workflow\":\n";
  AppendScenarioJson(&json, repeated);
  json += "\n}\n";

  const char* out_path = "BENCH_planner.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
