// Telemetry + observability bench. Part 1 (legacy): exercises the full
// serving path (REST -> JobService -> cached planning -> simulated
// execution -> model refinement) with a mixed async workload and dumps the
// whole metrics registry as JSON to BENCH_telemetry.json. Part 2: measures
// the flight-recorder's cost — raw journal append throughput (events/sec,
// ns/event, enabled vs disabled) and the end-to-end serving overhead of
// always-on recording — and writes BENCH_observability.json. The e2e
// overhead number is the acceptance gate: always-on journaling must stay
// within a few percent of the disabled baseline.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/ires_server.h"
#include "core/rest_api.h"
#include "service/job_service.h"
#include "telemetry/event_journal.h"

namespace {

using namespace ires;

constexpr const char* kLineCountGraph =
    "asapServerLog,LineCount,0\n"
    "LineCount,d1,0\n"
    "d1,$$target\n";

constexpr const char* kChainGraph =
    "asapServerLog,LineCount,0\n"
    "LineCount,d1,0\n"
    "d1,Grep,0\n"
    "Grep,d2,0\n"
    "d2,$$target\n";

void Register(RestApi* api) {
  struct Call {
    const char* path;
    const char* body;
  };
  const Call calls[] = {
      {"/apiv1/datasets/asapServerLog",
       "Constraints.Engine.FS=HDFS\n"
       "Execution.path=hdfs:///log\n"
       "Optimization.size=5e8\n"
       "Optimization.documents=1000\n"},
      {"/apiv1/abstractOperators/LineCount",
       "Constraints.OpSpecification.Algorithm.name=LineCount\n"},
      {"/apiv1/abstractOperators/Grep",
       "Constraints.OpSpecification.Algorithm.name=Grep\n"},
      {"/apiv1/operators/LineCount_Spark",
       "Constraints.Engine=Spark\n"
       "Constraints.OpSpecification.Algorithm.name=LineCount\n"
       "Constraints.Input0.Engine.FS=HDFS\n"
       "Constraints.Output0.Engine.FS=HDFS\n"},
      {"/apiv1/operators/Grep_MapReduce",
       "Constraints.Engine=MapReduce\n"
       "Constraints.OpSpecification.Algorithm.name=Grep\n"
       "Constraints.Input0.Engine.FS=HDFS\n"
       "Constraints.Output0.Engine.FS=HDFS\n"},
  };
  for (const Call& call : calls) {
    const ApiResponse r = api->Handle("POST", call.path, call.body);
    if (r.code != 201) {
      std::fprintf(stderr, "register %s failed: %d %s\n", call.path, r.code,
                   r.body.c_str());
      std::exit(1);
    }
  }
  for (const auto& [name, graph] :
       {std::pair<const char*, const char*>{"lc", kLineCountGraph},
        std::pair<const char*, const char*>{"chain", kChainGraph}}) {
    const ApiResponse r = api->Handle(
        "POST", std::string("/apiv1/workflows/") + name, graph);
    if (r.code != 201) {
      std::fprintf(stderr, "workflow %s failed: %d %s\n", name, r.code,
                   r.body.c_str());
      std::exit(1);
    }
  }
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One full serving run on a fresh server: submit `rounds` mixed async
// workflows through REST and drain. Returns the wall seconds of the
// submit+drain phase. `snapshot_to` (optional) receives the server's
// metrics JSON after the run.
double RunServingWorkload(int rounds, bool journal_enabled,
                          std::string* snapshot_to) {
  IresServer server;
  server.journal().set_enabled(journal_enabled);
  JobService::Options options;
  options.workers = 4;
  options.queue_capacity = 256;
  JobService jobs(&server, options);
  RestApi api(&server, &jobs);
  Register(&api);

  const double start = NowSeconds();
  for (int i = 0; i < rounds; ++i) {
    const char* wf = (i % 3 == 0) ? "chain" : "lc";
    const ApiResponse r = api.Handle(
        "POST", std::string("/apiv1/workflows/") + wf + "/execute?mode=async");
    if (r.code != 202) {
      std::fprintf(stderr, "submit %s failed: %d %s\n", wf, r.code,
                   r.body.c_str());
      std::exit(1);
    }
  }
  if (!jobs.WaitForIdle(120.0)) {
    std::fprintf(stderr, "jobs did not drain\n");
    std::exit(1);
  }
  const double seconds = NowSeconds() - start;

  if (snapshot_to != nullptr) {
    // A few synchronous reads so the HTTP route histograms cover GETs too.
    (void)api.Handle("GET", "/apiv1/jobs");
    (void)api.Handle("GET", "/apiv1/stats");
    (void)api.Handle("GET", "/apiv1/healthz");
    (void)api.Handle("GET", "/apiv1/metrics");
    (void)api.Handle("GET", "/apiv1/models/drift");
    (void)api.Handle("GET", "/apiv1/debug/events?limit=16");
    *snapshot_to = server.metrics().RenderJson();
  }
  return seconds;
}

// Raw journal throughput: `threads` writers each appending `per_thread`
// events. Returns ns per event.
double JournalAppendNs(bool enabled, int threads, int per_thread) {
  EventJournal journal;
  journal.set_enabled(enabled);
  const double start = NowSeconds();
  std::vector<std::thread> writers;
  writers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    writers.emplace_back([&journal, t, per_thread] {
      const std::string job = "bench-" + std::to_string(t);
      for (int i = 0; i < per_thread; ++i) {
        JournalEvent event;
        event.kind = EventKind::kStepStart;
        event.job = job;
        event.step = i;
        event.engine = "Spark";
        journal.Append(std::move(event));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  const double seconds = NowSeconds() - start;
  return seconds * 1e9 /
         (static_cast<double>(threads) * static_cast<double>(per_thread));
}

bool WriteFile(const char* path, const std::string& content) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return false;
  }
  std::fputs(content.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace

int main() {
  // ---- Part 1: the legacy metrics snapshot (journal on, as in prod).
  std::string metrics_json;
  (void)RunServingWorkload(/*rounds=*/24, /*journal_enabled=*/true,
                           &metrics_json);
  if (!WriteFile("BENCH_telemetry.json", metrics_json)) return 1;
  std::printf("telemetry snapshot: wrote %zu bytes to BENCH_telemetry.json\n",
              metrics_json.size() + 1);

  // ---- Part 2: flight-recorder cost.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200000;
  const double ns_enabled =
      JournalAppendNs(/*enabled=*/true, kThreads, kPerThread);
  const double ns_disabled =
      JournalAppendNs(/*enabled=*/false, kThreads, kPerThread);
  const double events_per_sec = 1e9 / ns_enabled * kThreads;

  // E2E overhead: best-of-N fresh-server runs per mode, interleaved so
  // machine noise hits both modes alike. Warm up once to page everything in.
  constexpr int kRounds = 48;
  constexpr int kReps = 3;
  (void)RunServingWorkload(kRounds, true, nullptr);
  double best_enabled = 1e100;
  double best_disabled = 1e100;
  for (int rep = 0; rep < kReps; ++rep) {
    const double disabled = RunServingWorkload(kRounds, false, nullptr);
    const double enabled = RunServingWorkload(kRounds, true, nullptr);
    if (disabled < best_disabled) best_disabled = disabled;
    if (enabled < best_enabled) best_enabled = enabled;
  }
  double overhead_pct =
      best_disabled > 0.0
          ? (best_enabled - best_disabled) / best_disabled * 100.0
          : 0.0;
  if (overhead_pct < 0.0) overhead_pct = 0.0;  // noise floor

  char obs[768];
  std::snprintf(
      obs, sizeof(obs),
      "{\"journal\":{\"writerThreads\":%d,\"eventsPerWriter\":%d,"
      "\"nsPerEventEnabled\":%.1f,\"nsPerEventDisabled\":%.1f,"
      "\"eventsPerSec\":%.0f},"
      "\"serving\":{\"jobsPerRun\":%d,\"repetitions\":%d,"
      "\"bestDisabledSeconds\":%.4f,\"bestEnabledSeconds\":%.4f,"
      "\"overheadPct\":%.2f}}",
      kThreads, kPerThread, ns_enabled, ns_disabled, events_per_sec, kRounds,
      kReps, best_disabled, best_enabled, overhead_pct);
  if (!WriteFile("BENCH_observability.json", obs)) return 1;
  std::printf(
      "observability: %.0f events/sec (%.0f ns/event enabled, %.0f ns "
      "disabled), e2e journal overhead %.2f%%\n",
      events_per_sec, ns_enabled, ns_disabled, overhead_pct);
  return 0;
}
