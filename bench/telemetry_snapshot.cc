// Telemetry snapshot bench: exercises the full serving path (REST ->
// JobService -> cached planning -> simulated execution -> model
// refinement) with a mixed async workload, then dumps the whole metrics
// registry as JSON to BENCH_telemetry.json. CI and local runs use the
// dump to eyeball instrument coverage and to diff counter/latency
// distributions across revisions.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "core/ires_server.h"
#include "core/rest_api.h"
#include "service/job_service.h"

namespace {

using namespace ires;

constexpr const char* kLineCountGraph =
    "asapServerLog,LineCount,0\n"
    "LineCount,d1,0\n"
    "d1,$$target\n";

constexpr const char* kChainGraph =
    "asapServerLog,LineCount,0\n"
    "LineCount,d1,0\n"
    "d1,Grep,0\n"
    "Grep,d2,0\n"
    "d2,$$target\n";

void Register(RestApi* api) {
  struct Call {
    const char* path;
    const char* body;
  };
  const Call calls[] = {
      {"/apiv1/datasets/asapServerLog",
       "Constraints.Engine.FS=HDFS\n"
       "Execution.path=hdfs:///log\n"
       "Optimization.size=5e8\n"
       "Optimization.documents=1000\n"},
      {"/apiv1/abstractOperators/LineCount",
       "Constraints.OpSpecification.Algorithm.name=LineCount\n"},
      {"/apiv1/abstractOperators/Grep",
       "Constraints.OpSpecification.Algorithm.name=Grep\n"},
      {"/apiv1/operators/LineCount_Spark",
       "Constraints.Engine=Spark\n"
       "Constraints.OpSpecification.Algorithm.name=LineCount\n"
       "Constraints.Input0.Engine.FS=HDFS\n"
       "Constraints.Output0.Engine.FS=HDFS\n"},
      {"/apiv1/operators/Grep_MapReduce",
       "Constraints.Engine=MapReduce\n"
       "Constraints.OpSpecification.Algorithm.name=Grep\n"
       "Constraints.Input0.Engine.FS=HDFS\n"
       "Constraints.Output0.Engine.FS=HDFS\n"},
  };
  for (const Call& call : calls) {
    const ApiResponse r = api->Handle("POST", call.path, call.body);
    if (r.code != 201) {
      std::fprintf(stderr, "register %s failed: %d %s\n", call.path, r.code,
                   r.body.c_str());
      std::exit(1);
    }
  }
  for (const auto& [name, graph] :
       {std::pair<const char*, const char*>{"lc", kLineCountGraph},
        std::pair<const char*, const char*>{"chain", kChainGraph}}) {
    const ApiResponse r = api->Handle("POST", std::string("/apiv1/workflows/") + name, graph);
    if (r.code != 201) {
      std::fprintf(stderr, "workflow %s failed: %d %s\n", name, r.code,
                   r.body.c_str());
      std::exit(1);
    }
  }
}

}  // namespace

int main() {
  IresServer server;
  JobService::Options options;
  options.workers = 4;
  options.queue_capacity = 128;
  JobService jobs(&server, options);
  RestApi api(&server, &jobs);
  Register(&api);

  // Mixed workload: repeated async submissions of both workflows so the
  // plan cache, the pool and the per-engine counters all move.
  constexpr int kRounds = 24;
  for (int i = 0; i < kRounds; ++i) {
    const char* wf = (i % 3 == 0) ? "chain" : "lc";
    const ApiResponse r = api.Handle(
        "POST", std::string("/apiv1/workflows/") + wf + "/execute?mode=async");
    if (r.code != 202) {
      std::fprintf(stderr, "submit %s failed: %d %s\n", wf, r.code,
                   r.body.c_str());
      return 1;
    }
  }
  if (!jobs.WaitForIdle(120.0)) {
    std::fprintf(stderr, "jobs did not drain\n");
    return 1;
  }

  // A few synchronous reads so the HTTP route histograms cover GETs too.
  (void)api.Handle("GET", "/apiv1/jobs");
  (void)api.Handle("GET", "/apiv1/stats");
  (void)api.Handle("GET", "/apiv1/healthz");
  (void)api.Handle("GET", "/apiv1/metrics");

  const std::string json = server.metrics().RenderJson();
  const char* out_path = "BENCH_telemetry.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);

  const JobService::Stats stats = jobs.stats();
  std::printf("telemetry snapshot: %llu jobs succeeded, wrote %zu bytes to %s\n",
              static_cast<unsigned long long>(stats.succeeded),
              json.size() + 1, out_path);
  return 0;
}
