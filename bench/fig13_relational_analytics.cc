// Reproduces deliverable Figure 13: execution times of the relational
// workflow (three TPC-H-style queries over tables split across PostgreSQL,
// MemSQL and HDFS) on single engines versus IReS, across scales 1..50 GB.
//
// Paper shape targets: PostgreSQL is usable only at small scale (moving the
// other engines' tables into it is prohibitive); MemSQL fails beyond a few
// GB because the heavy query's intermediates exceed the cluster memory;
// IReS runs each query in the engine holding its tables and stays good at
// every size.

#include "bench_util.h"

int main() {
  using namespace ires;
  using namespace ires::bench;

  auto registry = MakeStandardEngineRegistry();
  PrintHeader(
      "Figure 13: relational analytics (q1,q2,q3) exec time [s] vs scale");
  std::printf("%10s %12s %12s %12s %12s %26s\n", "scale[GB]", "PostgreSQL",
              "MemSQL", "Spark", "IReS", "IReS placement (q1,q2,q3)");

  for (double scale : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    const GeneratedWorkload w = MakeRelationalWorkflow(scale);
    const RunOutcome pg = PlanAndExecute(w, registry.get(), "PostgreSQL");
    const RunOutcome memsql = PlanAndExecute(w, registry.get(), "MemSQL");
    const RunOutcome spark = PlanAndExecute(w, registry.get(), "Spark");
    const RunOutcome ires = PlanAndExecute(w, registry.get());

    std::string q1, q2, q3;
    for (const PlanStep& step : ires.plan.steps) {
      if (step.kind != PlanStep::Kind::kOperator) continue;
      // Operators appear in dependency order: q1, q2, q3.
      if (q1.empty()) {
        q1 = step.engine;
      } else if (q2.empty()) {
        q2 = step.engine;
      } else {
        q3 = step.engine;
      }
    }
    std::printf("%10.0f %12s %12s %12s %12s %8s,%8s,%8s\n", scale,
                Cell(pg).c_str(), Cell(memsql).c_str(), Cell(spark).c_str(),
                Cell(ires).c_str(), q1.c_str(), q2.c_str(), q3.c_str());
  }
  std::printf(
      "\nshape check: MemSQL must fail past a few GB; IReS <= best single "
      "engine at every scale\n");
  return 0;
}
