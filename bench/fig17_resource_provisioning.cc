// Reproduces deliverable Figure 17: execution time and execution cost of
// the Spark (MLlib) tf-idf operator versus input size under three resource
// strategies on a 32-core / 54 GB cluster:
//   max resources  - statically grab everything,
//   min resources  - statically grab the minimum,
//   IReS           - NSGA-II provisioning against the trained models.
//
// Paper shape targets: IReS matches the max-resources execution time while
// its cost sits between the two static strategies, growing with the input
// as more resources are provisioned.

#include "bench_util.h"
#include "provisioning/resource_provisioner.h"

int main() {
  using namespace ires;
  using namespace ires::bench;

  auto registry = MakeStandardEngineRegistry();
  SimulatedEngine* spark = registry->Find("Spark");

  // 32 cores / 54 GB total: 8 containers x 4 cores x 6.75 GB.
  NsgaResourceProvisioner::Limits limits;
  limits.max_containers = 8;
  limits.max_cores_per_container = 4;
  limits.max_memory_gb_per_container = 6.75;
  Nsga2::Options ga;
  ga.population = 40;
  ga.generations = 60;
  NsgaResourceProvisioner provisioner(limits, ga);

  const Resources kMax{8, 4, 6.75};
  const Resources kMin{1, 1, 1.0};

  PrintHeader(
      "Figure 17: Spark tf-idf exec time [s] and cost vs input size");
  std::printf("%10s | %9s %9s %9s | %9s %9s %9s | %s\n", "documents",
              "t(max)", "t(min)", "t(IReS)", "c(max)", "c(min)", "c(IReS)",
              "IReS allocation");

  for (double docs : {1e3, 10e3, 100e3, 1e6, 10e6}) {
    OperatorRunRequest request;
    request.algorithm = "TF_IDF";
    request.input_bytes = docs * kBytesPerDocument;
    request.input_records = docs;

    auto estimate = [&](const Resources& res) {
      OperatorRunRequest r = request;
      r.resources = res;
      return spark->Estimate(r).value();
    };
    const OperatorRunEstimate with_max = estimate(kMax);
    const OperatorRunEstimate with_min = estimate(kMin);
    request.resources = kMax;
    const Resources chosen = provisioner.Advise(
        *spark, request, OptimizationPolicy::MinimizeTime());
    const OperatorRunEstimate with_ires = estimate(chosen);

    std::printf("%10.0f | %9.1f %9.1f %9.1f | %9.0f %9.0f %9.0f | %s\n",
                docs, with_max.exec_seconds, with_min.exec_seconds,
                with_ires.exec_seconds, with_max.cost, with_min.cost,
                with_ires.cost, chosen.ToString().c_str());
  }
  std::printf(
      "\nshape check: t(IReS) ~ t(max); c(min) <= c(IReS) <= c(max), with "
      "c(IReS) approaching c(max) as the input grows\n");
  return 0;
}
