// Reproduces MuSQLE Figures 4 and 5 (paper appendix B): multi-engine SQL
// optimization time versus query size (number of tables), broken down into
// plan enumeration, EXPLAIN-API and statistics-injection time, for the real
// 3-engine fleet and for simulated fleets of 2-6 engines.
//
// Paper shape targets: total optimization time grows with the number of
// tables and engines; the external API calls dominate the in-process
// enumeration. (Our engine endpoints are in-process, so the API share is
// modeled as calls x per-call latency; see DESIGN.md.)

#include <cstdio>

#include "sql/tpch_queries.h"
#include "sql/musqle_optimizer.h"

namespace {

using namespace ires;
using namespace ires::sql;

// A synthetic fleet of n engines with MemSQL/Spark-like cost models and
// distinct names, used to range the engine count like Fig. 5.
std::map<std::string, std::unique_ptr<SqlEngine>> MakeFleet(int n) {
  std::map<std::string, std::unique_ptr<SqlEngine>> fleet;
  for (int i = 0; i < n; ++i) {
    const std::string name = "SqlEng" + std::to_string(i);
    if (i % 2 == 0) {
      auto engine = std::make_unique<SparkSqlEngine>();
      fleet[name] = std::make_unique<SparkSqlEngine>();
    } else {
      fleet[name] = std::make_unique<MemSqlSqlEngine>(1e6);
    }
  }
  return fleet;
}

}  // namespace

int main() {

  // ---- Figure 4: the real PostgreSQL/MemSQL/SparkSQL fleet. ---------------
  {
    Catalog catalog =
        MakeTpchCatalog(5.0, "PostgreSQL", "MemSQL", "SparkSQL");
    auto engines = MakeStandardSqlEngines();
    MusqleOptimizer optimizer(&catalog, &engines);
    std::printf(
        "\n=== MuSQLE Fig 4: optimization time breakdown [s] vs #tables "
        "(3 engines) ===\n");
    std::printf("%4s %8s %12s %12s %12s %12s\n", "Q", "tables", "enumerate",
                "explainAPI", "injectAPI", "total");
    const auto queries = MusqleQuerySet();
    for (size_t i = 0; i < queries.size(); ++i) {
      auto query = SqlParser::Parse(queries[i]);
      if (!query.ok()) continue;
      OptimizerStats stats;
      auto plan = optimizer.Optimize(query.value(), &stats);
      if (!plan.ok()) continue;
      const double total = stats.enumeration_wall_seconds +
                           stats.modeled_explain_seconds +
                           stats.modeled_inject_seconds;
      std::printf("%4zu %8zu %12.5f %12.5f %12.5f %12.5f\n", i,
                  query.value().tables.size(),
                  stats.enumeration_wall_seconds,
                  stats.modeled_explain_seconds,
                  stats.modeled_inject_seconds, total);
    }
  }

  // ---- Figure 5: ranging the number of federated engines. -----------------
  {
    std::printf(
        "\n=== MuSQLE Fig 5: total optimization time [s] vs #tables, "
        "2-6 engines ===\n");
    std::printf("%8s %10s %10s %10s\n", "tables", "2-eng", "4-eng", "6-eng");
    const auto queries = MusqleQuerySet();
    // Representative queries of each arity.
    const int kByArity[] = {0 /*2 tables*/, 5 /*3*/, 8 /*4*/, 16 /*6*/,
                            17 /*7*/};
    for (int qi : kByArity) {
      auto query = SqlParser::Parse(queries[qi]);
      if (!query.ok()) continue;
      std::printf("%8zu", query.value().tables.size());
      for (int engines_n : {2, 4, 6}) {
        auto fleet = MakeFleet(engines_n);
        // All tables homed on engine 0 of the fleet.
        Catalog catalog = MakeTpchCatalog(5.0, "SqlEng0", "SqlEng0",
                                          "SqlEng1");
        MusqleOptimizer optimizer(&catalog, &fleet);
        OptimizerStats stats;
        auto plan = optimizer.Optimize(query.value(), &stats);
        const double total = !plan.ok() ? -1.0
                                        : stats.enumeration_wall_seconds +
                                              stats.modeled_explain_seconds +
                                              stats.modeled_inject_seconds;
        std::printf(" %10.5f", total);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nshape check: grows with tables and engines; API time dominates "
      "enumeration; all within seconds\n");
  return 0;
}
