// Ablation: PANIC-style adaptive profiling versus uniform random sampling.
// With an equal run budget, placing each profiling run where the model
// ensemble disagrees most should model cliffy performance surfaces (memory
// spills, parallelism knees) at least as well as uniform sampling — the
// rationale behind the PANIC profiler the platform builds on (§2.2.1).

#include <cmath>
#include <cstdio>

#include "engines/standard_engines.h"
#include "modeling/model_selection.h"
#include "profiling/adaptive_profiler.h"

namespace {

using namespace ires;

double TestError(const Model& model, const SimulatedEngine& engine,
                 const std::string& algorithm, double max_gb, Rng* rng) {
  double err = 0.0;
  int n = 0;
  for (int i = 0; i < 300; ++i) {
    OperatorRunRequest probe;
    probe.algorithm = algorithm;
    probe.input_bytes = rng->Uniform(0.2, max_gb) * 1e9;
    probe.resources = {static_cast<int>(rng->UniformInt(1, 8)),
                       static_cast<int>(rng->UniformInt(1, 4)),
                       rng->Uniform(1.0, 6.0)};
    auto truth = engine.Estimate(probe);
    if (!truth.ok()) continue;
    const double t = truth.value().exec_seconds;
    err += std::fabs(model.Predict(Profiler::FeatureVector(probe)) - t) / t;
    ++n;
  }
  return n > 0 ? err / n : -1.0;
}

}  // namespace

int main() {
  auto registry = MakeStandardEngineRegistry();
  std::printf(
      "\n=== Ablation: adaptive (PANIC-style) vs uniform profiling ===\n");
  std::printf("%10s %12s %22s %22s\n", "budget", "operator",
              "uniform rel.err", "adaptive rel.err");

  for (int budget : {16, 32, 64}) {
    for (const auto& [engine_name, algorithm, max_gb] :
         {std::tuple<const char*, const char*, double>{"Spark", "Pagerank",
                                                       40.0},
          {"MapReduce", "Wordcount", 8.0}}) {
      SimulatedEngine* engine = registry->Find(engine_name);
      AdaptiveProfiler::Options options;
      options.total_budget = budget;
      options.initial_samples = budget / 4;
      options.seed = 2024 + budget;
      AdaptiveProfiler profiler(engine, options);
      AdaptiveProfiler::Domain domain;
      domain.max_input_bytes = max_gb * 1e9;

      auto fit = [&](const std::vector<ProfileRecord>& records)
          -> Result<std::unique_ptr<Model>> {
        Matrix x;
        Vector y;
        for (const ProfileRecord& r : records) {
          x.AppendRow(r.features);
          y.push_back(r.exec_seconds);
        }
        CrossValidationSelector selector(3);
        return selector.SelectAndFit(x, y);
      };
      auto adaptive_model = fit(profiler.Profile(algorithm, domain));
      auto uniform_model = fit(profiler.ProfileUniform(algorithm, domain));
      if (!adaptive_model.ok() || !uniform_model.ok()) continue;

      Rng rng(11 + budget);
      const double uniform_err =
          TestError(*uniform_model.value(), *engine, algorithm, max_gb, &rng);
      Rng rng2(11 + budget);
      const double adaptive_err = TestError(*adaptive_model.value(), *engine,
                                            algorithm, max_gb, &rng2);
      char label[64];
      std::snprintf(label, sizeof(label), "%s/%s", algorithm, engine_name);
      std::printf("%10d %12s %22.3f %22.3f\n", budget, label, uniform_err,
                  adaptive_err);
    }
  }
  std::printf(
      "\nshape check: adaptive error <= uniform error on most rows, "
      "especially at small budgets\n");
  return 0;
}
