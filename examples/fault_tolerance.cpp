// Fault tolerance (deliverable §4.5): runs the 4-operator HelloWorld
// workflow of Table 1 and kills the engine hosting HelloWorld2 mid-run.
// The execution monitor reports the failure, the dead engine is marked OFF,
// and IResReplan reschedules only the residual workflow, reusing the
// intermediate results that were already materialized.
//
//   $ ./fault_tolerance

#include <cstdio>

#include "engines/standard_engines.h"
#include "executor/recovering_executor.h"
#include "planner/materialization_report.h"
#include "workloadgen/asap_workflows.h"

int main() {
  using namespace ires;

  auto registry = MakeStandardEngineRegistry();
  GeneratedWorkload w = MakeHelloWorldWorkflow(0.5);
  ClusterSimulator cluster(16, 4, 8.0);
  DpPlanner planner(&w.library, registry.get());

  // Show the optimal plan before any failure.
  auto optimal = planner.Plan(w.graph, {});
  if (!optimal.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 optimal.status().ToString().c_str());
    return 1;
  }
  std::printf("--- optimal plan (no failures) ---\n%s\n",
              optimal.value().ToString().c_str());

  // The Fig. 19 view: every engine alternative per operator, the chosen
  // one starred, infeasible ones crossed out.
  auto alternatives = BuildMaterializationReport(w.graph, w.library,
                                                 *registry, optimal.value());
  if (alternatives.ok()) {
    std::printf("--- materialized alternatives ---\n%s\n",
                alternatives.value().ToString().c_str());
  }

  // Kill the engine of HelloWorld2 the first time it starts.
  Enforcer enforcer(registry.get(), &cluster, 4242);
  bool fired = false;
  enforcer.set_fault_injector([&fired](const PlanStep& step, double now) {
    if (fired || step.algorithm != "HelloWorld2") return false;
    fired = true;
    std::printf(">>> t=%.1fs: engine %s dies while starting %s\n", now,
                step.engine.c_str(), step.name.c_str());
    return true;
  });

  RecoveringExecutor recovering(&planner, &enforcer, registry.get());
  auto outcome =
      recovering.Run(w.graph, {}, ReplanStrategy::kIresReplan);
  if (!outcome.ok()) {
    std::fprintf(stderr, "workflow unrecoverable: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("\n--- replanned residual workflow (after failure) ---\n%s\n",
              outcome.value().final_plan.ToString().c_str());
  std::printf(
      "recovered with %d replan(s); total execution %.1f simulated "
      "seconds; replanning cost %.3f ms\n",
      outcome.value().replans, outcome.value().total_execution_seconds,
      outcome.value().replanning_ms);
  std::printf(
      "note: HelloWorld and HelloWorld1 do NOT appear in the replanned "
      "workflow - their outputs were reused\n");
  return 0;
}
