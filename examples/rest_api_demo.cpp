// External API demo (deliverable §3.5): drives the IReS server through its
// RESTful routes exactly as the other ASAP components would — registering
// the LineCount artefacts, storing the workflow, materializing and
// executing it (synchronously and as an async job) — and prints every
// request/response exchange.
//
//   $ ./rest_api_demo

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "core/rest_api.h"

namespace {

void Call(ires::RestApi* api, const char* method, const char* path,
          const char* body = "") {
  const ires::ApiResponse response = api->Handle(method, path, body);
  std::printf("%-4s %-45s -> %d %s\n", method, path, response.code,
              response.body.substr(0, 120).c_str());
}

}  // namespace

int main() {
  ires::IresServer server;
  ires::RestApi api(&server);

  std::printf("--- registering artefacts over the API ---\n");
  Call(&api, "POST", "/apiv1/datasets/asapServerLog",
       "Constraints.Engine.FS=HDFS\n"
       "Execution.path=hdfs:///user/root/asap-server.log\n"
       "Optimization.size=1e9\nOptimization.documents=5e6\n");
  Call(&api, "POST", "/apiv1/abstractOperators/LineCount",
       "Constraints.OpSpecification.Algorithm.name=LineCount\n");
  Call(&api, "POST", "/apiv1/operators/LineCount_Spark",
       "Constraints.Engine=Spark\n"
       "Constraints.OpSpecification.Algorithm.name=LineCount\n"
       "Constraints.Input0.Engine.FS=HDFS\n"
       "Constraints.Output0.Engine.FS=HDFS\n");
  Call(&api, "POST", "/apiv1/operators/LineCount_Python",
       "Constraints.Engine=Python\n"
       "Constraints.OpSpecification.Algorithm.name=LineCount\n"
       "Constraints.Input0.Engine.FS=Local\n"
       "Constraints.Output0.Engine.FS=Local\n");

  std::printf("\n--- inspecting the library ---\n");
  Call(&api, "GET", "/apiv1/operators");
  Call(&api, "GET", "/apiv1/operators/LineCount_Spark");
  Call(&api, "GET", "/apiv1/engines");

  std::printf("\n--- workflow lifecycle ---\n");
  Call(&api, "POST", "/apiv1/workflows/LineCountWorkflow",
       "asapServerLog,LineCount,0\nLineCount,d1,0\nd1,$$target\n");
  Call(&api, "GET", "/apiv1/workflows");
  Call(&api, "POST", "/apiv1/workflows/LineCountWorkflow/materialize");
  Call(&api, "POST", "/apiv1/workflows/LineCountWorkflow/execute");

  std::printf("\n--- async execution through the job service ---\n");
  const ires::ApiResponse submit = api.Handle(
      "POST", "/apiv1/workflows/LineCountWorkflow/execute?mode=async");
  std::printf("POST %-45s -> %d %s\n",
              "/apiv1/workflows/LineCountWorkflow/execute?mode=async",
              submit.code, submit.body.c_str());
  const size_t at = submit.body.find("job-");
  const std::string job_id =
      submit.body.substr(at, submit.body.find('"', at) - at);
  const std::string job_path = "/apiv1/jobs/" + job_id;
  for (int i = 0; i < 500; ++i) {
    const ires::ApiResponse poll = api.Handle("GET", job_path);
    if (poll.body.find("\"state\":\"SUCCEEDED\"") != std::string::npos ||
        poll.body.find("\"state\":\"FAILED\"") != std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  Call(&api, "GET", job_path.c_str());
  Call(&api, "GET", "/apiv1/jobs");
  Call(&api, "GET", "/apiv1/stats");

  std::printf("\n--- observability surface ---\n");
  Call(&api, "GET", "/apiv1/healthz");
  const std::string trace_path = job_path + "/trace";
  const ires::ApiResponse trace = api.Handle("GET", trace_path);
  std::printf("GET  %-45s -> %d (%zu bytes of Chrome trace JSON; load in "
              "chrome://tracing)\n",
              trace_path.c_str(), trace.code, trace.body.size());
  const ires::ApiResponse metrics = api.Handle("GET", "/apiv1/metrics");
  std::printf("GET  %-45s -> %d, Prometheus exposition:\n", "/apiv1/metrics",
              metrics.code);
  // Print the job/cache/engine lines; the full text is the scrape payload.
  size_t pos = 0;
  while (pos < metrics.body.size()) {
    size_t end = metrics.body.find('\n', pos);
    if (end == std::string::npos) end = metrics.body.size();
    const std::string line = metrics.body.substr(pos, end - pos);
    if (line.compare(0, 10, "ires_jobs_") == 0 ||
        line.compare(0, 16, "ires_plan_cache_") == 0 ||
        line.compare(0, 12, "ires_engine_") == 0) {
      std::printf("  %s\n", line.c_str());
    }
    pos = end + 1;
  }

  std::printf("\n--- failure handling: kill Spark and re-materialize ---\n");
  Call(&api, "PUT", "/apiv1/engines/Spark/availability", "off");
  Call(&api, "POST", "/apiv1/workflows/LineCountWorkflow/materialize");
  return 0;
}
