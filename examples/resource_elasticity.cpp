// Elastic resource provisioning (deliverable §2.2.4 / §4.4): NSGA-II
// searches the (#containers, cores, memory) space over the trained models
// of the Spark tf-idf operator, producing a Pareto front of (time, cost)
// and picking "just the right amount" of resources per policy.
//
//   $ ./resource_elasticity [documents]

#include <cstdio>
#include <cstdlib>

#include "engines/standard_engines.h"
#include "provisioning/resource_provisioner.h"

int main(int argc, char** argv) {
  using namespace ires;

  const double docs = argc > 1 ? std::atof(argv[1]) : 500e3;
  auto registry = MakeStandardEngineRegistry();
  const SimulatedEngine* spark = registry->Find("Spark");

  OperatorRunRequest request;
  request.algorithm = "TF_IDF";
  request.input_bytes = docs * kBytesPerDocument;
  request.input_records = docs;
  request.resources = spark->default_resources();

  NsgaResourceProvisioner::Limits limits;
  limits.max_containers = 8;
  limits.max_cores_per_container = 4;
  limits.max_memory_gb_per_container = 6.75;
  Nsga2::Options ga;
  ga.population = 40;
  ga.generations = 60;
  NsgaResourceProvisioner provisioner(limits, ga);

  std::printf("provisioning Spark tf-idf over %.0f documents "
              "(cluster cap: 8x4c x 6.75GB)\n\n",
              docs);
  for (const auto& [label, policy] :
       {std::pair<const char*, OptimizationPolicy>{
            "minimize time", OptimizationPolicy::MinimizeTime()},
        {"minimize cost", OptimizationPolicy::MinimizeCost()},
        {"weighted t+0.001c", OptimizationPolicy::Weighted(1.0, 0.001)}}) {
    const Resources chosen = provisioner.Advise(*spark, request, policy);
    OperatorRunRequest probe = request;
    probe.resources = chosen;
    auto estimate = spark->Estimate(probe);
    std::printf("policy %-18s -> %-14s est %8.1f s, cost %10.0f\n", label,
                chosen.ToString().c_str(), estimate.value().exec_seconds,
                estimate.value().cost);
  }

  std::printf("\nPareto front of the last run (time [s] vs cost):\n");
  for (const auto& point : provisioner.last_front()) {
    std::printf("  %-14s t=%8.1f  c=%10.0f\n",
                point.resources.ToString().c_str(), point.seconds,
                point.cost);
  }
  return 0;
}
