// MuSQLE demo (deliverable §5, appendix B): multi-engine SQL optimization.
// The example query Qe of the MuSQLE paper joins six TPC-H tables that live
// in three different engines; the location-aware DP optimizer pushes each
// subquery to the engine holding its tables and ships only the small
// intermediates.
//
//   $ ./multi_engine_sql [SQL...]

#include <cstdio>

#include "sql/musqle_optimizer.h"

int main(int argc, char** argv) {
  using namespace ires;
  using namespace ires::sql;

  const std::string sql =
      argc > 1 ? argv[1]
               : "SELECT c_name, o_orderdate "
                 "FROM part, partsupp, lineitem, orders, customer, nation "
                 "WHERE p_partkey = ps_partkey AND "
                 "c_nationkey = n_nationkey AND l_partkey = p_partkey AND "
                 "o_custkey = c_custkey AND o_orderkey = l_orderkey AND "
                 "p_retailprice > 2090 AND n_name = 'GERMANY'";

  // Table placement of the evaluation: small -> PostgreSQL,
  // medium -> MemSQL, large -> SparkSQL/HDFS.
  Catalog catalog =
      MakeTpchCatalog(10.0, "PostgreSQL", "MemSQL", "SparkSQL");
  auto engines = MakeStandardSqlEngines();
  MusqleOptimizer optimizer(&catalog, &engines);

  auto query = SqlParser::Parse(sql);
  if (!query.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n\n", query.value().ToString().c_str());

  OptimizerStats stats;
  auto plan = optimizer.Optimize(query.value(), &stats);
  if (!plan.ok()) {
    std::fprintf(stderr, "optimization failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("--- multi-engine plan ---\n%s\n",
              plan.value().ToString().c_str());
  std::printf(
      "optimization: %.3f ms enumeration, %d EXPLAIN calls, %d stat "
      "injections\n\n",
      stats.enumeration_wall_seconds * 1e3, stats.explain_calls,
      stats.inject_calls);

  for (const char* engine : {"SparkSQL", "PostgreSQL", "MemSQL"}) {
    auto single = optimizer.PlanSingleEngine(query.value(), engine);
    if (single.ok()) {
      std::printf("single-engine %-11s estimate: %8.2f s\n", engine,
                  single.value().total_seconds);
    } else {
      std::printf("single-engine %-11s estimate: %s\n", engine,
                  single.status().ToString().c_str());
    }
  }
  std::printf("multi-engine MuSQLE        estimate: %8.2f s (@%s)\n",
              plan.value().total_seconds,
              plan.value().result_engine.c_str());

  Rng rng(2027);
  std::printf("simulated execution: %.2f s\n",
              ExecutePlanGroundTruth(plan.value(), engines, &rng));
  return 0;
}
