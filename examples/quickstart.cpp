// Quickstart: the deliverable's §3.3 walkthrough as code.
//
// We stand up an IReS server, register a dataset and a LineCount operator
// (abstract + two materialized implementations on different engines) using
// the platform's key=value description format, define the workflow with the
// `graph` file syntax, materialize (plan) it and execute it on the
// simulated multi-engine cluster.
//
//   $ ./quickstart

#include <cstdio>

#include "core/ires_server.h"

int main() {
  using namespace ires;

  IresServer server;

  // 1. Dataset definition (asapLibrary/datasets/asapServerLog).
  Status st = server.RegisterArtifact(ArtifactKind::kDataset,
                                      "asapServerLog",
                                      "Optimization.documents=200000\n"
                                      "Execution.path=hdfs:///user/root/"
                                      "asap-server.log\n"
                                      "Optimization.size=2.5e9\n"
                                      "Constraints.Engine.FS=HDFS\n"
                                      "Constraints.type=text\n");
  if (!st.ok()) {
    std::fprintf(stderr, "dataset registration failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }

  // 2. Abstract operator definition (asapLibrary/abstractOperators/...).
  (void)server.RegisterArtifact(
      ArtifactKind::kAbstractOperator, "LineCount",
      "Constraints.OpSpecification.Algorithm.name=LineCount\n"
      "Constraints.Input.number=1\n"
      "Constraints.Output.number=1\n");

  // 3. Two materialized implementations: Spark and a centralized Python
  //    script (the wc -l of the walkthrough).
  (void)server.RegisterArtifact(
      ArtifactKind::kMaterializedOperator, "LineCount_Spark",
      "Constraints.Engine=Spark\n"
      "Constraints.OpSpecification.Algorithm.name=LineCount\n"
      "Constraints.Input.number=1\n"
      "Constraints.Output.number=1\n"
      "Constraints.Input0.Engine.FS=HDFS\n"
      "Constraints.Input0.type=text\n"
      "Constraints.Output0.Engine.FS=HDFS\n"
      "Constraints.Output0.type=text\n");
  (void)server.RegisterArtifact(
      ArtifactKind::kMaterializedOperator, "LineCount_Python",
      "Constraints.Engine=Python\n"
      "Constraints.OpSpecification.Algorithm.name=LineCount\n"
      "Constraints.Input.number=1\n"
      "Constraints.Output.number=1\n"
      "Constraints.Input0.Engine.FS=Local\n"
      "Constraints.Input0.type=text\n"
      "Constraints.Output0.Engine.FS=Local\n"
      "Constraints.Output0.type=text\n");

  // 4. Abstract workflow definition: the `graph` file.
  auto graph = server.ParseWorkflow(
      "asapServerLog,LineCount,0\n"
      "LineCount,d1,0\n"
      "d1,$$target\n");
  if (!graph.ok()) {
    std::fprintf(stderr, "workflow parse failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }

  // 5. Materialize: the planner picks the best implementation per the
  //    min-execution-time policy (moves are inserted automatically when an
  //    implementation needs the data elsewhere).
  auto plan = server.MaterializeWorkflow(graph.value());
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("--- materialized plan ---\n%s\n",
              plan.value().ToString().c_str());

  // 6. Execute with monitoring + recovery; the observed runtimes feed the
  //    model-refinement library.
  auto outcome = server.ExecuteWorkflow(graph.value());
  if (!outcome.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("execution finished in %.2f simulated seconds "
              "(planning took %.3f ms, %d replans)\n",
              outcome.value().total_execution_seconds,
              outcome.value().total_planning_ms, outcome.value().replans);
  std::printf("LineCount model now holds %zu observed run(s)\n",
              server
                  .estimator("LineCount",
                             outcome.value().final_plan.steps.back().engine)
                  ->sample_count());
  return 0;
}
