// Text clustering (deliverable §3.4 / §4.1): a tf-idf -> k-means workflow
// whose two operators each have a centralized (scikit-learn) and a
// distributed (Spark/MLlib) implementation. Running it across corpus sizes
// shows the planner's three regimes:
//   small corpus  -> everything centralized;
//   medium corpus -> the hybrid "mix 'n' match" plan (tf-idf on scikit,
//                    k-means on Spark, move/transform inserted in between)
//                    that beats every single-engine plan;
//   large corpus  -> everything on Spark.
//
//   $ ./text_clustering [documents...]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/ires_server.h"
#include "workloadgen/asap_workflows.h"

namespace {

// Plans with only `engine` available and returns its estimated seconds
// (negative when infeasible).
double SingleEngineEstimate(const ires::GeneratedWorkload& w,
                            const std::string& engine) {
  using namespace ires;
  IresServer server;
  (void)server.ImportLibrary(w.library);
  for (const std::string& name : server.engines().Names()) {
    if (name != engine) (void)server.engines().SetAvailable(name, false);
  }
  auto plan = server.MaterializeWorkflow(w.graph);
  return plan.ok() ? plan.value().estimated_seconds : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ires;

  std::vector<double> sizes = {2e3, 20e3, 200e3};
  if (argc > 1) {
    sizes.clear();
    for (int i = 1; i < argc; ++i) sizes.push_back(std::atof(argv[i]));
  }

  for (double docs : sizes) {
    const GeneratedWorkload w = MakeTextAnalyticsWorkflow(docs);
    IresServer server;
    if (!server.ImportLibrary(w.library).ok()) return 1;

    auto plan = server.MaterializeWorkflow(w.graph);
    if (!plan.ok()) {
      std::fprintf(stderr, "planning failed: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    std::printf("=== %.0f documents ===\n%s", docs,
                plan.value().ToString().c_str());
    std::printf("single-engine estimates: scikit=%.1fs Spark=%.1fs\n",
                SingleEngineEstimate(w, "scikit"),
                SingleEngineEstimate(w, "Spark"));

    auto outcome = server.ExecuteWorkflow(w.graph);
    if (!outcome.ok()) {
      std::fprintf(stderr, "execution failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("executed in %.1f simulated seconds\n\n",
                outcome.value().total_execution_seconds);
  }
  return 0;
}
