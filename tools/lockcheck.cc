// lockcheck: concurrency-policy checker for the src/ tree.
//
// The thread-safety story rests on every lock in the codebase being an
// annotated, rank-checked ires::Mutex/SharedMutex (src/common/mutex.h).
// Clang's -Wthread-safety proves the annotation layer; this tool enforces
// the conventions the analysis cannot express:
//
//   1. No raw synchronization primitives outside src/common/: std::mutex,
//      std::shared_mutex, std::recursive_mutex, std::timed_mutex,
//      std::lock_guard, std::unique_lock, std::shared_lock,
//      std::scoped_lock and plain std::condition_variable (which cannot
//      wait on an ires::Mutex — condition_variable_any can, and keeps the
//      rank registry's bookkeeping consistent across the wait).
//   2. Every `*Locked(...)` method declaration in a header carries a
//      REQUIRES(...) clause — the naming convention promises "caller holds
//      the lock", and the annotation makes the analysis hold callers to it.
//   3. Every NO_THREAD_SAFETY_ANALYSIS waiver is justified: a comment
//      within the ten preceding lines must say why (matched by the words
//      "waiver" or "boundary"), so no escape hatch lands silently.
//
// Usage: lockcheck <src-root>
// Exit status: 0 clean, 1 violations (listed file:line: message), 2 usage.
//
// Wired as the `lockcheck` ctest, so a raw std::mutex reintroduced anywhere
// in src/ fails the suite even under compilers without -Wthread-safety.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  size_t line = 0;
  std::string message;
};

/// Raw primitives banned outside src/common/. Order matters:
/// condition_variable_any must be recognized (and allowed) before the
/// plain condition_variable token can claim the prefix.
const char* const kBannedTokens[] = {
    "std::mutex",         "std::shared_mutex", "std::recursive_mutex",
    "std::timed_mutex",   "std::lock_guard",   "std::unique_lock",
    "std::shared_lock",   "std::scoped_lock",  "std::condition_variable",
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// First occurrence of `token` in `line` at a token boundary and before
/// any // comment, or npos. "std::condition_variable_any" never matches
/// the "std::condition_variable" token (boundary check).
size_t FindToken(const std::string& line, const std::string& token) {
  const size_t comment = line.find("//");
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    if (comment != std::string::npos && pos > comment) return std::string::npos;
    const size_t end = pos + token.size();
    const bool boundary = end >= line.size() || !IsIdentChar(line[end]);
    if (boundary) {
      // "_any" after condition_variable is the allowed cv type.
      return pos;
    }
    pos = end;
  }
  return std::string::npos;
}

/// A comment anywhere in the window justifying an analysis waiver.
bool HasWaiverComment(const std::vector<std::string>& lines, size_t index) {
  const size_t begin = index >= 10 ? index - 10 : 0;
  for (size_t i = begin; i <= index && i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const size_t comment = line.find("//");
    if (comment == std::string::npos) continue;
    std::string text = line.substr(comment);
    std::transform(text.begin(), text.end(), text.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (text.find("waiver") != std::string::npos ||
        text.find("boundary") != std::string::npos) {
      return true;
    }
  }
  return false;
}

/// A `...Locked(` method declaration starting at lines[index]: the
/// declaration text through its terminator (';' or '{') must contain
/// REQUIRES. Definitions in .cc files restate the annotation-free
/// signature, so only headers are held to this.
bool LockedDeclHasRequires(const std::vector<std::string>& lines,
                           size_t index) {
  std::string decl;
  for (size_t i = index; i < lines.size() && i < index + 8; ++i) {
    decl += lines[i];
    decl += ' ';
    const size_t stop = lines[i].find_first_of(";{");
    if (stop != std::string::npos && i > index) break;
    if (stop != std::string::npos && i == index &&
        lines[i].find("Locked") < stop) {
      // Terminator after the name on the same line ends the declaration
      // only if it follows the parameter list's closing paren.
      const size_t close = lines[i].rfind(')');
      if (close != std::string::npos && stop > close) break;
    }
  }
  return decl.find("REQUIRES") != std::string::npos;
}

/// Position of a `<name>Locked(` call-or-declaration on this line where
/// <name>Locked is an identifier tail (not e.g. "BlockedBy").
size_t FindLockedDecl(const std::string& line) {
  const size_t comment = line.find("//");
  size_t pos = 0;
  while ((pos = line.find("Locked", pos)) != std::string::npos) {
    if (comment != std::string::npos && pos > comment) {
      return std::string::npos;
    }
    const size_t end = pos + 6;  // strlen("Locked")
    if (end < line.size() && line[end] == '(') return pos;
    pos = end;
  }
  return std::string::npos;
}

void CheckFile(const fs::path& path, bool in_common,
               std::vector<Violation>* out) {
  std::ifstream in(path);
  if (!in) return;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);

  const bool is_header = path.extension() == ".h";
  for (size_t i = 0; i < lines.size(); ++i) {
    if (!in_common) {
      for (const char* token : kBannedTokens) {
        if (FindToken(lines[i], token) != std::string::npos) {
          out->push_back({path.string(), i + 1,
                          std::string("raw ") + token +
                              " outside src/common/ — use the annotated "
                              "ires::Mutex/SharedMutex wrappers "
                              "(common/mutex.h)"});
        }
      }
      if (lines[i].find("NO_THREAD_SAFETY_ANALYSIS") != std::string::npos &&
          !HasWaiverComment(lines, i)) {
        out->push_back({path.string(), i + 1,
                        "NO_THREAD_SAFETY_ANALYSIS without a justification "
                        "comment (say why within the 10 preceding lines, "
                        "mentioning 'waiver' or 'boundary')"});
      }
    }
    if (is_header && FindLockedDecl(lines[i]) != std::string::npos &&
        !LockedDeclHasRequires(lines, i)) {
      out->push_back({path.string(), i + 1,
                      "*Locked() declaration without REQUIRES(...) — the "
                      "suffix promises the caller holds the lock; annotate "
                      "it so the analysis enforces that"});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <src-root>\n", argv[0]);
    return 2;
  }
  const fs::path root(argv[1]);
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "lockcheck: not a directory: %s\n", argv[1]);
    return 2;
  }

  std::vector<Violation> violations;
  size_t files = 0;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& path = entry.path();
    if (path.extension() != ".h" && path.extension() != ".cc") continue;
    const std::string rel = fs::relative(path, root).generic_string();
    const bool in_common = rel.rfind("common/", 0) == 0;
    ++files;
    CheckFile(path, in_common, &violations);
  }

  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return a.file != b.file ? a.file < b.file : a.line < b.line;
            });
  for (const Violation& v : violations) {
    std::fprintf(stderr, "%s:%zu: %s\n", v.file.c_str(), v.line, v.message.c_str());
  }
  std::printf("lockcheck: %zu files, %zu violation%s\n", files,
              violations.size(), violations.size() == 1 ? "" : "s");
  return violations.empty() ? 0 : 1;
}
