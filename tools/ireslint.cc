// ireslint: offline workflow linter.
//
// Runs the WorkflowAnalyzer passes over a platform `graph` file without
// starting a server — the same diagnostics POST /apiv1/validate returns,
// usable from editors, CI and the shell:
//
//   ireslint --library asapLibrary workflow.graph
//   ireslint --library asapLibrary --json --policy weighted:0.7,0.3 wf.graph
//
// Exit status: 0 clean (warnings allowed), 1 error diagnostics, 2 usage or
// I/O failure.

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/workflow_analyzer.h"
#include "common/strings.h"
#include "engines/standard_engines.h"
#include "operators/operator_library.h"
#include "planner/optimization_policy.h"
#include "workflow/workflow_graph.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] <graph-file>\n"
               "  --library DIR     operator-library directory "
               "(operators/, abstractOperators/, datasets/)\n"
               "  --json            emit diagnostics as a JSON array\n"
               "  --policy P        time | cost | weighted:<tw>,<cw>\n"
               "  --cores N         cluster core capacity (enables WF015)\n"
               "  --memory GB       cluster memory capacity\n",
               argv0);
}

/// ParseGraphFile classifies a name as an operator only when the library
/// knows its abstract; with no library every node would become a dataset and
/// every edge would be rejected. Standalone runs instead infer node kinds
/// from the graph's bipartite structure: 2-color the edge list starting from
/// the `$$target` (a dataset by definition) and from sources, and seed the
/// scratch library with synthetic abstracts for the operator-colored names.
/// Coloring conflicts are left unresolved — the structural passes then
/// report the bad edge themselves.
void InferOperators(const std::string& text, ires::OperatorLibrary* library) {
  std::map<std::string, std::vector<std::string>> adjacent;
  std::set<std::string> has_producer;
  std::map<std::string, int> color;  // 0 = dataset, 1 = operator
  std::deque<std::string> queue;
  for (const std::string& raw : ires::Split(text, '\n')) {
    const std::string line = ires::Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> fields = ires::SplitAndTrim(line, ',');
    if (fields.size() < 2) continue;
    if (fields[1] == "$$target") {
      color.emplace(fields[0], 0);
      queue.push_back(fields[0]);
      continue;
    }
    adjacent[fields[0]].push_back(fields[1]);
    adjacent[fields[1]].push_back(fields[0]);
    has_producer.insert(fields[1]);
  }
  // Graph sources are datasets too (operators must have inputs).
  for (const auto& [name, _] : adjacent) {
    if (has_producer.count(name) == 0 && color.emplace(name, 0).second) {
      queue.push_back(name);
    }
  }
  while (!queue.empty()) {
    const std::string name = queue.front();
    queue.pop_front();
    const int next = 1 - color[name];
    for (const std::string& peer : adjacent[name]) {
      if (color.emplace(peer, next).second) queue.push_back(peer);
    }
  }
  for (const auto& [name, kind] : color) {
    if (kind != 1 || library->FindAbstractByName(name) != nullptr) continue;
    ires::MetadataTree meta;
    meta.Set("Constraints.OpSpecification.Algorithm.name", name);
    (void)library->AddAbstract(ires::AbstractOperator(name, std::move(meta)));
  }
}

bool ParsePolicy(const std::string& text, ires::OptimizationPolicy* policy) {
  if (text == "time") {
    *policy = ires::OptimizationPolicy::MinimizeTime();
    return true;
  }
  if (text == "cost") {
    *policy = ires::OptimizationPolicy::MinimizeCost();
    return true;
  }
  const std::string prefix = "weighted:";
  if (text.rfind(prefix, 0) == 0) {
    const std::string weights = text.substr(prefix.size());
    const size_t comma = weights.find(',');
    if (comma == std::string::npos) return false;
    char* end = nullptr;
    const double tw = std::strtod(weights.c_str(), &end);
    if (end != weights.c_str() + comma) return false;
    const char* cw_begin = weights.c_str() + comma + 1;
    const double cw = std::strtod(cw_begin, &end);
    if (end == cw_begin || *end != '\0') return false;
    *policy = ires::OptimizationPolicy::Weighted(tw, cw);
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string library_dir;
  std::string graph_file;
  std::string policy_text;
  bool as_json = false;
  int cores = 0;
  double memory_gb = 0.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--library") {
      const char* v = next();
      if (v == nullptr) { Usage(argv[0]); return 2; }
      library_dir = v;
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg == "--policy") {
      const char* v = next();
      if (v == nullptr) { Usage(argv[0]); return 2; }
      policy_text = v;
    } else if (arg == "--cores") {
      const char* v = next();
      if (v == nullptr) { Usage(argv[0]); return 2; }
      cores = ires::ParseIntOr(v, -1);
      if (cores < 0) {
        std::fprintf(stderr, "bad --cores value: %s\n", v);
        return 2;
      }
    } else if (arg == "--memory") {
      const char* v = next();
      if (v == nullptr) { Usage(argv[0]); return 2; }
      memory_gb = std::strtod(v, nullptr);
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    } else if (graph_file.empty()) {
      graph_file = arg;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (graph_file.empty()) {
    Usage(argv[0]);
    return 2;
  }

  std::ifstream in(graph_file);
  if (!in) {
    std::fprintf(stderr, "ireslint: cannot read %s\n", graph_file.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();

  ires::OperatorLibrary library;
  if (!library_dir.empty()) {
    ires::Status loaded = library.LoadFromDirectory(library_dir);
    if (!loaded.ok()) {
      std::fprintf(stderr, "ireslint: loading %s: %s\n", library_dir.c_str(),
                   loaded.ToString().c_str());
      return 2;
    }
  }

  if (library_dir.empty()) InferOperators(text.str(), &library);

  ires::Result<ires::WorkflowGraph> graph =
      ires::WorkflowGraph::ParseGraphFile(text.str(), library);
  if (!graph.ok()) {
    std::fprintf(stderr, "ireslint: parsing %s: %s\n", graph_file.c_str(),
                 graph.status().ToString().c_str());
    return 2;
  }

  ires::OptimizationPolicy policy;
  bool have_policy = false;
  if (!policy_text.empty()) {
    if (!ParsePolicy(policy_text, &policy)) {
      std::fprintf(stderr, "ireslint: bad --policy value: %s\n",
                   policy_text.c_str());
      return 2;
    }
    have_policy = true;
  }

  std::unique_ptr<ires::EngineRegistry> engines =
      ires::MakeStandardEngineRegistry();

  ires::WorkflowAnalyzer::Options options;
  if (!library_dir.empty()) {
    options.library = &library;
    options.engines = engines.get();
  }
  options.cluster_total_cores = cores;
  options.cluster_total_memory_gb = memory_gb;

  const std::vector<ires::Diagnostic> diagnostics =
      ires::WorkflowAnalyzer(options).Analyze(
          graph.value(), have_policy ? &policy : nullptr);

  if (as_json) {
    std::printf("%s\n", ires::RenderJson(diagnostics).c_str());
  } else if (diagnostics.empty()) {
    std::printf("%s: clean\n", graph_file.c_str());
  } else {
    std::printf("%s", ires::RenderText(diagnostics).c_str());
  }
  return ires::HasErrors(diagnostics) ? 1 : 0;
}
